//! Soak-mode shared types: the per-scenario tenant template and the
//! per-cohort tail reports.
//!
//! The soak engine (bench crate) instantiates N-thousand-to-million
//! lightweight tenant *plants* per scenario. Running a full
//! `ControlPlane` (or even a `smartconf-core` `Controller`, which
//! carries a `GainModel` and a `String`-named goal) per tenant would
//! dominate memory and setup time, so the profile-derived control
//! parameters are hoisted into one immutable [`SoakTemplate`] per
//! scenario — built once, shared across every tenant via `Arc` — and
//! each tenant is just two `f64`s of slab state. The template applies
//! the paper's integral law (§5.1–§5.2, including the two-pole danger
//! region for hard goals) as a pure function, exactly mirroring
//! `Controller::step` for the frozen-model, non-interacting case.
//!
//! Tail statistics come back as plain-number [`CohortReport`]s distilled
//! from streaming [`QuantileSketch`]es — per-tenant epoch logs are never
//! retained.

use smartconf_core::{pole_from_delta, Error, LinearFit, ProfileSet, Result};
use smartconf_metrics::QuantileSketch;
use smartconf_runtime::{ActiveFaults, SensorFault};

/// Floor on the virtual-goal margin `λ` used by soak templates.
///
/// Clean profiles from the deterministic simulators can report `λ`
/// near zero, which would leave a hard goal with no headroom against
/// the soak's load disturbances; production SmartConf deployments see
/// sensor noise that keeps `λ` meaningfully positive, so the soak
/// imposes a floor.
pub const LAMBDA_FLOOR: f64 = 0.05;

/// How strongly the traffic wave disturbs a tenant plant, as a fraction
/// of the controllable span `|α·mid|`: `measured` shifts by
/// `(load − 1) · DISTURBANCE_GAIN · |α·mid|`.
///
/// The disturbance is **additive**, not a gain multiplier — a load that
/// multiplied `α` itself would change the loop gain and destabilise the
/// frozen-pole law once the ratio exceeded `2/(1−pole)`, which is a
/// model-adaptation problem (PR 7), not a traffic problem.
pub const DISTURBANCE_GAIN: f64 = 0.3;

/// Immutable per-scenario control/plant parameters shared by every
/// tenant in a soak (one allocation per scenario, `Arc`-shared across
/// shards).
#[derive(Debug, Clone, PartialEq)]
pub struct SoakTemplate {
    /// Scenario id, e.g. `"HD4995"`.
    pub scenario: String,
    /// Profiled gain `α` of the linear plant `measured = α·c + β`.
    pub alpha: f64,
    /// Profiled intercept `β`.
    pub beta: f64,
    /// Regular pole (damping) from the profile's `Δ` via
    /// [`pole_from_delta`]; hard goals drop to pole 0 in the danger
    /// region, exactly as `Controller::step`.
    pub pole: f64,
    /// Effective virtual-goal margin (profile `λ` floored at
    /// [`LAMBDA_FLOOR`], capped at 0.5).
    pub lambda: f64,
    /// Goal target (upper bound on the measured metric).
    pub target: f64,
    /// Whether the goal is hard: danger region + virtual goal apply,
    /// and the cohort gate checks `p99 overshoot ≤ Δ`.
    pub hard: bool,
    /// Lower settable bound.
    pub lo: f64,
    /// Upper settable bound.
    pub hi: f64,
    /// Arrival setting for new tenants: the *safe* bound (the one
    /// minimising the measured metric), so churned-in tenants start
    /// goal-compliant and the controller walks them toward the target.
    pub initial: f64,
    /// Additive disturbance scale: `(load − 1) · disturb` shifts the
    /// measured metric.
    pub disturb: f64,
}

impl SoakTemplate {
    /// Derives a template from a scenario's §6.1 evaluation profile.
    ///
    /// `candidates` are the scenario's sweepable settings (bounds and
    /// goal placement are derived from them); `profile` is the first
    /// evaluation profile (multi-channel scenarios soak their primary
    /// channel). The goal target is placed at the plant's response to
    /// the median candidate setting, so roughly half the settable range
    /// has headroom — every scenario is soaked as the same well-posed
    /// upper-bound tracking problem, differing in gain, scale, noise
    /// margin, and hardness.
    pub fn from_profile(
        scenario: &str,
        hard: bool,
        candidates: &[f64],
        profile: &ProfileSet,
    ) -> Result<SoakTemplate> {
        let fit: LinearFit = profile.fit()?;
        let mut sorted: Vec<f64> = candidates
            .iter()
            .copied()
            .filter(|c| c.is_finite())
            .collect();
        sorted.sort_by(f64::total_cmp);
        let (Some(&lo), Some(&hi)) = (sorted.first(), sorted.last()) else {
            return Err(Error::InvalidParameter {
                reason: format!("{scenario}: no finite candidate settings"),
            });
        };
        if lo >= hi {
            return Err(Error::InvalidParameter {
                reason: format!("{scenario}: degenerate setting range [{lo}, {hi}]"),
            });
        }
        let mid = sorted[sorted.len() / 2];
        let target = fit.predict(mid);
        if !target.is_finite() || target <= 0.0 {
            return Err(Error::InvalidGoal {
                reason: format!("{scenario}: goal target {target} at mid setting {mid}"),
            });
        }
        let lambda = profile.lambda().clamp(LAMBDA_FLOOR, 0.5);
        let delta = 1.0 + 3.0 * lambda;
        let alpha = fit.alpha();
        if alpha == 0.0 || !alpha.is_finite() {
            return Err(Error::ZeroGain {
                conf: scenario.to_string(),
            });
        }
        Ok(SoakTemplate {
            scenario: scenario.to_string(),
            alpha,
            beta: fit.beta(),
            pole: pole_from_delta(delta),
            lambda,
            target,
            hard,
            lo,
            hi,
            initial: if alpha > 0.0 { lo } else { hi },
            disturb: DISTURBANCE_GAIN * (alpha * mid).abs(),
        })
    }

    /// Hard-goal budget `Δ = 1 + 3λ` (paper §5.2): the worst tolerated
    /// overshoot ratio under the two-pole scheme.
    pub fn delta(&self) -> f64 {
        1.0 + 3.0 * self.lambda
    }

    /// The tenant plant: measured metric at `setting` under a traffic
    /// `load` multiplier and a multiplicative sensor `jitter`.
    pub fn measured(&self, setting: f64, load: f64, jitter: f64) -> f64 {
        ((self.alpha * setting + self.beta) + (load - 1.0) * self.disturb) * (1.0 + jitter)
    }

    /// One integral-law step: the next setting given the current one and
    /// the measured metric. Mirrors `Controller::step` for a frozen
    /// model and `n = 1`: error against the virtual target for hard
    /// goals, pole 0 in the danger region, clamp to bounds.
    pub fn next_setting(&self, current: f64, measured: f64) -> f64 {
        if !measured.is_finite() {
            return current;
        }
        let target = if self.hard {
            (1.0 - self.lambda) * self.target
        } else {
            self.target
        };
        let error = target - measured;
        let pole = if self.hard && error < 0.0 {
            0.0
        } else {
            self.pole
        };
        let next = current + (1.0 - pole) / self.alpha * error;
        next.clamp(self.lo, self.hi)
    }

    /// Overshoot ratio `measured / target` — the quantity cohort
    /// sketches record. 1.0 is exactly on goal; a hard cohort breaches
    /// when its p99 exceeds [`SoakTemplate::delta`].
    pub fn overshoot(&self, measured: f64) -> f64 {
        measured / self.target
    }

    /// The overshoot ratio below which a tenant counts as *recovered*
    /// after a fault stretch. Hard goals must be back at or under the
    /// real target (the virtual goal's `λ` headroom makes that the
    /// steady state, so it is reachable within a few epochs); soft
    /// goals track the target exactly and hover around 1.0 under the
    /// ±2 % sensor jitter, so their recovery line sits one `λ` above
    /// — jitter-proof without being lenient.
    pub fn recovered_below(&self) -> f64 {
        if self.hard {
            1.0
        } else {
            1.0 + self.lambda
        }
    }

    /// One guarded sense epoch for a soak tenant under the fault plane.
    ///
    /// This is the slab-weight guard ladder: the full chaos-mode
    /// `GuardSet` re-expressed over the distilled template so a tenant
    /// costs ~56 bytes instead of a `ControlPlane`. The rungs, in
    /// order:
    ///
    /// 1. **Late delivery** — a lag-delayed decision reaches the plant
    ///    at the first un-lagged epoch, before sensing.
    /// 2. **Plant truth** — the measured metric at the *actuated*
    ///    setting; this is what the overshoot sketch records, corrupted
    ///    readings never pollute the SLO statistics.
    /// 3. **Sensor fault** — dropout removes the reading, corruption
    ///    NaNs or scales it.
    /// 4. **Admission filter** — non-finite readings and readings
    ///    beyond `spike_ratio × target` are rejected before they can
    ///    reach the control law.
    /// 5. **Median-of-3 vote** — when enabled, a reading deviating
    ///    from the median of itself and the previous two admitted
    ///    readings by more than a quarter of the admission cut is
    ///    replaced by that median, killing single-epoch spikes in the
    ///    `[spike_ratio/4, spike_ratio]×target` band that slip under
    ///    admission. Consistent readings pass through raw, so clean
    ///    steady-state dynamics are untouched (a vote that *always*
    ///    smoothed would add two epochs of delay and limit-cycle
    ///    against the deadbeat pole).
    /// 6. **Stale watchdog** — after `watchdog_epochs` consecutive
    ///    epochs with no admitted reading, the plant reverts to the
    ///    last setting that produced a clean one.
    /// 7. **Divergence fallback** (hard goals) — `divergence_streak`
    ///    consecutive admitted readings past the real target drop the
    ///    plant to the profiled-safe [`SoakTemplate::initial`] setting
    ///    and flush the lag pipeline.
    /// 8. **Re-engage backoff** — fallback holds for
    ///    `cooldown_epochs · 2^level` epochs (level capped at
    ///    `backoff_doublings`, doubling on every repeated fallback) and
    ///    re-engages only on a clean admitted reading.
    ///
    /// Recovery-SLO accounting (fault stretches, violation bursts,
    /// epochs-to-recover, the unrecovered latch) runs on plant truth
    /// regardless of arming, so disarmed arms report comparable tails.
    ///
    /// With `policy.armed == false` and a clean [`ActiveFaults`], the
    /// setting trajectory is *bit-identical* to the plain
    /// [`next_setting`](SoakTemplate::next_setting) loop — the clean
    ///-arm control pin in the determinism suite holds the fault path
    /// to that contract.
    pub fn guarded_step(
        &self,
        policy: SlabGuardPolicy,
        slab: &mut SoakSlab,
        faults: &ActiveFaults,
        load: f64,
        jitter: f64,
    ) -> StepOutcome {
        let lag_active = faults.lag.is_some();
        if !lag_active && slab.state.has_pending {
            slab.setting = slab.pending;
            slab.state.has_pending = false;
        }
        let measured = self.measured(slab.setting, load, jitter);
        let violated = measured > self.target;
        let reading: Option<f64> = match faults.sensor {
            None => Some(measured),
            Some(SensorFault::Drop) | Some(SensorFault::Stale) => None,
            Some(SensorFault::Nan) => Some(f64::NAN),
            Some(SensorFault::Scale(f)) => Some(measured * f),
        };
        let mut out = StepOutcome {
            measured,
            violated,
            reengaged_dwell: None,
            recovered_after: None,
            burst_closed: None,
        };

        if !policy.armed {
            // Disarmed: the PR-8 law verbatim (next_setting already
            // holds on a non-finite reading).
            if let Some(r) = reading {
                slab.setting = self.next_setting(slab.setting, r);
            }
            self.account(slab, faults, measured, &mut out);
            return out;
        }

        let cut = policy.spike_ratio as f64 * self.target.abs();
        let admitted = reading.filter(|r| r.is_finite() && r.abs() <= cut);
        let value = admitted.map(|r| {
            let v = if policy.vote && slab.state.vote_fill >= 2 {
                let m = median3(r, slab.votes[0], slab.votes[1]);
                if (r - m).abs() > 0.25 * cut {
                    m
                } else {
                    r
                }
            } else {
                r
            };
            slab.votes[1] = slab.votes[0];
            slab.votes[0] = r;
            slab.state.vote_fill = (slab.state.vote_fill + 1).min(2);
            v
        });

        match value {
            None => {
                slab.state.missed = slab.state.missed.saturating_add(1);
                slab.state.viol_streak = 0;
                if slab.state.mode == Mode::Fallback {
                    slab.state.cooldown_left = slab.state.cooldown_left.saturating_sub(1);
                } else if slab.state.missed == policy.watchdog_epochs {
                    // Stale watchdog: blind too long — revert to the
                    // last setting that produced a clean reading.
                    slab.setting = slab.last_safe;
                    slab.state.has_pending = false;
                }
            }
            Some(v) => {
                slab.state.missed = 0;
                let danger = v > self.target;
                if slab.state.mode == Mode::Engaged {
                    if !danger {
                        slab.last_safe = slab.setting;
                        slab.state.viol_streak = 0;
                    } else if self.hard {
                        slab.state.viol_streak = slab.state.viol_streak.saturating_add(1);
                    }
                    if self.hard && slab.state.viol_streak >= policy.divergence_streak {
                        self.enter_fallback(policy, slab);
                    } else {
                        let next = self.next_setting(slab.setting, v);
                        if lag_active {
                            slab.pending = next;
                            slab.state.has_pending = true;
                        } else {
                            slab.setting = next;
                        }
                    }
                } else {
                    slab.state.cooldown_left = slab.state.cooldown_left.saturating_sub(1);
                    if slab.state.cooldown_left == 0 {
                        if danger {
                            // Still violating at cooldown expiry: back
                            // off again, dwell doubled.
                            self.enter_fallback(policy, slab);
                        } else {
                            slab.state.mode = Mode::Engaged;
                            slab.state.viol_streak = 0;
                            out.reengaged_dwell = Some(
                                ((policy.cooldown_epochs as u64) << slab.state.entry_level) as f64,
                            );
                        }
                    }
                }
            }
        }
        self.account(slab, faults, measured, &mut out);
        out
    }

    /// Drops the plant to the profiled-safe setting and arms the
    /// re-engage cooldown (rungs 7–8).
    fn enter_fallback(&self, policy: SlabGuardPolicy, slab: &mut SoakSlab) {
        let st = &mut slab.state;
        st.mode = Mode::Fallback;
        st.entry_level = st.backoff_level;
        st.cooldown_left = policy.cooldown_epochs << st.backoff_level;
        st.backoff_level = (st.backoff_level + 1).min(policy.backoff_doublings);
        st.viol_streak = 0;
        st.has_pending = false;
        slab.setting = self.initial;
    }

    /// Plant-truth accounting shared by the armed and disarmed paths:
    /// violation bursts, fault stretches, and the recovery SLO.
    fn account(
        &self,
        slab: &mut SoakSlab,
        faults: &ActiveFaults,
        measured: f64,
        out: &mut StepOutcome,
    ) {
        let st = &mut slab.state;
        if out.violated {
            st.burst_len = st.burst_len.saturating_add(1);
        } else if st.burst_len > 0 {
            out.burst_closed = Some(st.burst_len as f64);
            st.burst_len = 0;
        }
        if !faults.is_clean() {
            // Recovery is measured from the end of a fault stretch, so
            // the clock pauses while faults are still firing.
            st.in_stretch = true;
            return;
        }
        if st.in_stretch {
            st.in_stretch = false;
            st.recovery_pending = true;
        }
        if st.recovery_pending {
            st.recovery_elapsed = st.recovery_elapsed.saturating_add(1);
            if self.overshoot(measured) <= self.recovered_below() {
                out.recovered_after = Some(st.recovery_elapsed as f64);
                st.recovery_pending = false;
                st.recovery_elapsed = 0;
                st.unrecovered = false;
                st.backoff_level = 0;
            } else if st.recovery_elapsed > RECOVERY_SLO_EPOCHS {
                st.unrecovered = true;
            }
        }
    }
}

/// Median of three values, branch-free over `min`/`max` so it is exact
/// and platform-independent.
fn median3(a: f64, b: f64, c: f64) -> f64 {
    a.max(b).min(a.min(b).max(c))
}

/// Epochs a tenant gets to bring its plant back inside the goal after a
/// fault stretch ends before it is latched *unrecovered* — the
/// recovery SLO. Generous against the deadbeat/two-pole laws (which
/// settle in 1–3 model steps) yet far below even the shortest cohort's
/// epoch budget, so a latch means genuinely stuck, not merely slow.
pub const RECOVERY_SLO_EPOCHS: u16 = 12;

/// Compressed per-tenant guard configuration — the soak's answer to
/// `GuardPolicy`, encodable into a `u32` so a cohort's policy rides in
/// the tenant slab instead of behind an `Arc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabGuardPolicy {
    /// Master switch: disarmed reduces `guarded_step` to the plain
    /// PR-8 law plus plant-truth accounting.
    pub armed: bool,
    /// Median-of-3 smoothing of admitted readings (rung 5).
    pub vote: bool,
    /// Admission cut: readings beyond `spike_ratio × target` are
    /// rejected (rung 4). Must fit in 6 bits.
    pub spike_ratio: u8,
    /// Consecutive missed readings before the stale watchdog reverts
    /// to the last-safe setting (rung 6). Must fit in 4 bits.
    pub watchdog_epochs: u8,
    /// Consecutive violating admitted readings (hard goals) before the
    /// divergence fallback fires (rung 7). Must fit in 4 bits.
    pub divergence_streak: u8,
    /// Base re-engage cooldown, epochs (rung 8). Must fit in 6 bits.
    pub cooldown_epochs: u8,
    /// Cap on cooldown doublings across repeated fallbacks. Must fit
    /// in 2 bits.
    pub backoff_doublings: u8,
}

impl SlabGuardPolicy {
    /// The production soak ladder: armed, voting, spike cut at 8×
    /// target, 3-epoch watchdog and divergence streaks, 3-epoch
    /// cooldown with up to 2 doublings (max 12-epoch dwell — safe even
    /// for the 24-epoch hourly cohort).
    pub fn standard() -> SlabGuardPolicy {
        SlabGuardPolicy {
            armed: true,
            vote: true,
            spike_ratio: 8,
            watchdog_epochs: 3,
            divergence_streak: 3,
            cooldown_epochs: 3,
            backoff_doublings: 2,
        }
    }

    /// The standard ladder with the master switch off (the clean-arm
    /// control configuration).
    pub fn disarmed() -> SlabGuardPolicy {
        SlabGuardPolicy {
            armed: false,
            ..SlabGuardPolicy::standard()
        }
    }

    /// The standard ladder without the median-of-3 vote — the DESIGN
    /// §3f plant-quantum pin compares this against [`standard`]
    /// (SlabGuardPolicy::standard).
    pub fn without_vote() -> SlabGuardPolicy {
        SlabGuardPolicy {
            vote: false,
            ..SlabGuardPolicy::standard()
        }
    }

    /// Packs the policy into 24 bits of a `u32`:
    /// `armed(1) vote(1) spike(6) watchdog(4) divergence(4)
    /// cooldown(6) backoff(2)`, low to high.
    pub fn encode(self) -> u32 {
        (self.armed as u32)
            | (self.vote as u32) << 1
            | (self.spike_ratio as u32 & 0x3f) << 2
            | (self.watchdog_epochs as u32 & 0xf) << 8
            | (self.divergence_streak as u32 & 0xf) << 12
            | (self.cooldown_epochs as u32 & 0x3f) << 16
            | (self.backoff_doublings as u32 & 0x3) << 22
    }

    /// Inverse of [`encode`](SlabGuardPolicy::encode).
    pub fn decode(bits: u32) -> SlabGuardPolicy {
        SlabGuardPolicy {
            armed: bits & 1 != 0,
            vote: bits >> 1 & 1 != 0,
            spike_ratio: (bits >> 2 & 0x3f) as u8,
            watchdog_epochs: (bits >> 8 & 0xf) as u8,
            divergence_streak: (bits >> 12 & 0xf) as u8,
            cooldown_epochs: (bits >> 16 & 0x3f) as u8,
            backoff_doublings: (bits >> 22 & 0x3) as u8,
        }
    }
}

/// Guard mode of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Controller live.
    Engaged,
    /// Held on the profiled-safe setting pending re-engage.
    Fallback,
}

/// The integer half of a tenant's guard state. Every field is a small
/// saturating counter, so the whole struct packs into 16 bytes beside
/// the slab's five `f64`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlabGuardState {
    mode: Mode,
    missed: u8,
    viol_streak: u8,
    cooldown_left: u8,
    backoff_level: u8,
    entry_level: u8,
    vote_fill: u8,
    restart_age: u8,
    burst_len: u16,
    recovery_elapsed: u16,
    has_pending: bool,
    in_stretch: bool,
    recovery_pending: bool,
    unrecovered: bool,
}

/// Per-tenant soak slab under the fault plane: the actuated setting
/// plus the guard ladder's working state — ~56 bytes, versus the ~16
/// of PR 8's clean slab and the kilobytes of a real `ControlPlane`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakSlab {
    /// The setting currently actuated at the plant.
    pub setting: f64,
    /// Lag-delayed decision awaiting delivery (live iff the internal
    /// `has_pending` flag is set).
    pending: f64,
    /// Last setting that produced a clean admitted reading.
    last_safe: f64,
    /// Previous two admitted readings, for the median-of-3 vote.
    votes: [f64; 2],
    state: SlabGuardState,
}

impl SoakSlab {
    /// A fresh tenant at the template's profiled-safe arrival setting.
    pub fn new(template: &SoakTemplate) -> SoakSlab {
        SoakSlab {
            setting: template.initial,
            pending: 0.0,
            last_safe: template.initial,
            votes: [0.0; 2],
            state: SlabGuardState {
                mode: Mode::Engaged,
                missed: 0,
                viol_streak: 0,
                cooldown_left: 0,
                backoff_level: 0,
                entry_level: 0,
                vote_fill: 0,
                // Fresh arrivals are not post-restart cold caches.
                restart_age: u8::MAX,
                burst_len: 0,
                recovery_elapsed: 0,
                has_pending: false,
                in_stretch: false,
                recovery_pending: false,
                unrecovered: false,
            },
        }
    }

    /// Opens one epoch: applies a plant restart if the fault plane
    /// fired one (setting back to profiled-safe, controller and vote
    /// state wiped — recovery accounting deliberately survives) and
    /// returns the cold-cache age for the caller's
    /// `TrafficShape::restart_load` lookup (0 on the restart epoch
    /// itself).
    pub fn begin_epoch(&mut self, template: &SoakTemplate, restart: bool) -> u64 {
        if restart {
            self.setting = template.initial;
            self.last_safe = template.initial;
            self.votes = [0.0; 2];
            let st = &mut self.state;
            st.mode = Mode::Engaged;
            st.missed = 0;
            st.viol_streak = 0;
            st.cooldown_left = 0;
            st.vote_fill = 0;
            st.restart_age = 0;
            st.has_pending = false;
        } else {
            self.state.restart_age = self.state.restart_age.saturating_add(1);
        }
        self.state.restart_age as u64
    }

    /// Whether this tenant has blown the recovery SLO and still not
    /// re-entered its goal — the per-cohort unrecovered count sums
    /// this at end of run over tenants still resident at the horizon.
    pub fn is_unrecovered(&self) -> bool {
        self.state.unrecovered
    }
}

/// What one [`SoakTemplate::guarded_step`] epoch reports back to the
/// cohort sketches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Plant-truth measured metric (record `overshoot(measured)`).
    pub measured: f64,
    /// Whether plant truth violated the real target.
    pub violated: bool,
    /// `Some(dwell_epochs)` when the guard re-engaged this epoch —
    /// feed the epochs-to-re-engage sketch.
    pub reengaged_dwell: Option<f64>,
    /// `Some(epochs)` when a fault-stretch recovery completed this
    /// epoch — feed the MTTR sketch.
    pub recovered_after: Option<f64>,
    /// `Some(length)` when a violation burst closed this epoch — feed
    /// the burst-length sketch.
    pub burst_closed: Option<f64>,
}

/// Tail statistics for one (scenario, sensing-period) cohort, distilled
/// from a streaming sketch — O(1) memory regardless of tenant count.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// Sensing period of this cohort, µs.
    pub period_us: u64,
    /// Tenants hashed into this cohort (including churners).
    pub tenants: u64,
    /// Sense events recorded (active tenants × their epochs).
    pub senses: u64,
    /// Sense events where the measured metric violated the real target.
    pub violations: u64,
    /// Median overshoot ratio.
    pub p50: f64,
    /// 99th-percentile overshoot ratio.
    pub p99: f64,
    /// 99.9th-percentile overshoot ratio.
    pub p999: f64,
    /// Worst overshoot ratio seen.
    pub max: f64,
    /// Guard re-engage events after divergence fallbacks.
    pub reengages: u64,
    /// p99 epochs-to-re-engage (fallback dwell).
    pub reengage_p99: f64,
    /// p99 violation-burst length, epochs.
    pub burst_p99: f64,
    /// Completed fault-stretch recoveries.
    pub recoveries: u64,
    /// Mean epochs from fault-stretch end back inside the goal (the
    /// per-fault-class MTTR — each soak arm is one fault class).
    pub mttr: f64,
    /// p99 epochs-to-recover.
    pub recovery_p99: f64,
    /// Tenants resident at the horizon that blew the recovery SLO and
    /// never re-entered their goal.
    pub unrecovered: u64,
}

impl CohortReport {
    /// Distils a cohort's streaming sketch of overshoot ratios into the
    /// plain-number report, with no fault-plane statistics (the clean
    /// arm and the PR-8 call sites).
    pub fn from_sketch(
        period_us: u64,
        tenants: u64,
        violations: u64,
        sketch: &QuantileSketch,
    ) -> CohortReport {
        let empty = QuantileSketch::new();
        CohortReport::from_sketches(
            period_us, tenants, violations, sketch, &empty, &empty, &empty, 0,
        )
    }

    /// Distils a fault-arm cohort: the overshoot sketch plus the three
    /// recovery-SLO sketches (re-engage dwell, violation-burst length,
    /// epochs-to-recover) and the end-of-run unrecovered count.
    #[allow(clippy::too_many_arguments)]
    pub fn from_sketches(
        period_us: u64,
        tenants: u64,
        violations: u64,
        overshoot: &QuantileSketch,
        reengage: &QuantileSketch,
        burst: &QuantileSketch,
        recovery: &QuantileSketch,
        unrecovered: u64,
    ) -> CohortReport {
        CohortReport {
            period_us,
            tenants,
            senses: overshoot.count(),
            violations,
            p50: overshoot.quantile(0.50),
            p99: overshoot.quantile(0.99),
            p999: overshoot.quantile(0.999),
            max: overshoot.max(),
            reengages: reengage.count(),
            reengage_p99: reengage.quantile(0.99),
            burst_p99: burst.quantile(0.99),
            recoveries: recovery.count(),
            mttr: recovery.mean(),
            recovery_p99: recovery.quantile(0.99),
            unrecovered,
        }
    }
}

/// One scenario's soak outcome across all its cohorts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSoakReport {
    /// Scenario id.
    pub scenario: String,
    /// Fault arm this report ran under (`"clean"`, `"dropout"`,
    /// `"corrupt"`, `"lag"`, `"restart"`).
    pub arm: String,
    /// Whether the scenario's goal is hard (gated on p99 ≤ Δ).
    pub hard: bool,
    /// Hard-goal budget Δ = 1 + 3λ for the gate.
    pub delta: f64,
    /// Total tenants soaked for this scenario.
    pub tenants: u64,
    /// Per-cohort tail reports, in ascending period order.
    pub cohorts: Vec<CohortReport>,
}

impl ScenarioSoakReport {
    /// Whether any cohort's p99 overshoot exceeds the hard budget Δ.
    /// Always `false` for soft-goal scenarios.
    pub fn hard_breached(&self) -> bool {
        self.hard && self.cohorts.iter().any(|c| c.p99 > self.delta)
    }

    /// Tenants across all cohorts that ended the run unrecovered.
    pub fn unrecovered_tenants(&self) -> u64 {
        self.cohorts.iter().map(|c| c.unrecovered).sum()
    }
}

/// The full soak fleet report: every scenario, every cohort, plus the
/// run's shape parameters. [`SoakReport::render`] is the byte-stable
/// text artifact diffed across thread counts and machines.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Base experiment seed.
    pub seed: u64,
    /// Tenants per scenario requested.
    pub tenants_per_scenario: u64,
    /// Simulated horizon, µs.
    pub horizon_us: u64,
    /// Per-scenario outcomes, in roster order.
    pub scenarios: Vec<ScenarioSoakReport>,
}

impl SoakReport {
    /// Scenario ids whose hard-goal cohort gate is breached (empty on a
    /// healthy soak).
    pub fn hard_gate_breaches(&self) -> Vec<&str> {
        self.scenarios
            .iter()
            .filter(|s| s.hard_breached())
            .map(|s| s.scenario.as_str())
            .collect()
    }

    /// Unrecovered tenants summed over hard-goal scenario reports — the
    /// zero-tolerance fault-arm gate for HB6728/HD4995/MR2820.
    pub fn unrecovered_hard_tenants(&self) -> u64 {
        self.scenarios
            .iter()
            .filter(|s| s.hard)
            .map(|s| s.unrecovered_tenants())
            .sum()
    }

    /// Total sense events across every cohort of every scenario.
    pub fn total_senses(&self) -> u64 {
        self.scenarios
            .iter()
            .flat_map(|s| s.cohorts.iter())
            .map(|c| c.senses)
            .sum()
    }

    /// Renders the deterministic text report. Every number is formatted
    /// with explicit precision so the output is byte-identical across
    /// thread counts; the smoke binary diffs two renders directly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "soak report: seed {} tenants/scenario {} horizon {}s\n",
            self.seed,
            self.tenants_per_scenario,
            self.horizon_us / 1_000_000
        ));
        for s in &self.scenarios {
            out.push_str(&format!(
                "  {} [{}] {} delta {:.4} tenants {}\n",
                s.scenario,
                s.arm,
                if s.hard { "hard" } else { "soft" },
                s.delta,
                s.tenants
            ));
            for c in &s.cohorts {
                out.push_str(&format!(
                    "    period {:>6}s tenants {:>8} senses {:>10} viol {:>8} \
                     p50 {:.4} p99 {:.4} p999 {:.4} max {:.4} \
                     reeng {:>6} rp99 {:.1} b99 {:.1} rec {:>8} mttr {:.2} unrec {:>4}\n",
                    c.period_us / 1_000_000,
                    c.tenants,
                    c.senses,
                    c.violations,
                    c.p50,
                    c.p99,
                    c.p999,
                    c.max,
                    c.reengages,
                    c.reengage_p99,
                    c.burst_p99,
                    c.recoveries,
                    c.mttr,
                    c.unrecovered
                ));
            }
            if s.hard_breached() {
                out.push_str(&format!("    HARD GATE BREACHED (p99 > {:.4})\n", s.delta));
            }
        }
        out.push_str(&format!("total senses: {}\n", self.total_senses()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_profile() -> ProfileSet {
        // Plant: measured = 2c + 10, tight samples → small λ (floored).
        [
            (10.0, 30.0),
            (10.0, 30.2),
            (20.0, 50.0),
            (20.0, 50.4),
            (30.0, 70.0),
            (30.0, 70.2),
            (40.0, 90.0),
            (40.0, 90.3),
        ]
        .into_iter()
        .collect()
    }

    fn toy_template(hard: bool) -> SoakTemplate {
        SoakTemplate::from_profile("TOY1", hard, &[10.0, 20.0, 30.0, 40.0], &toy_profile())
            .expect("toy template")
    }

    #[test]
    fn template_derivation_matches_profile() {
        let t = toy_template(true);
        assert!((t.alpha - 2.0).abs() < 0.05, "alpha {}", t.alpha);
        assert!((t.beta - 10.0).abs() < 1.0, "beta {}", t.beta);
        assert_eq!(t.lo, 10.0);
        assert_eq!(t.hi, 40.0);
        // Median of 4 candidates is the 3rd; target = fit(30) ≈ 70.
        assert!((t.target - 70.0).abs() < 1.0, "target {}", t.target);
        assert!(t.lambda >= LAMBDA_FLOOR);
        assert_eq!(t.initial, 10.0, "positive gain starts at the low bound");
        // λ near the floor gives Δ = 1.15 ≤ 2 → deadbeat pole per §5.1.
        assert_eq!(t.pole, pole_from_delta(t.delta()));
        assert!((0.0..1.0).contains(&t.pole));
        assert!(t.delta() > 1.0);
    }

    #[test]
    fn soft_template_converges_to_target() {
        let t = toy_template(false);
        let mut setting = t.initial;
        for _ in 0..50 {
            let m = t.measured(setting, 1.0, 0.0);
            setting = t.next_setting(setting, m);
        }
        let m = t.measured(setting, 1.0, 0.0);
        assert!(
            (t.overshoot(m) - 1.0).abs() < 1e-6,
            "converged overshoot {}",
            t.overshoot(m)
        );
    }

    #[test]
    fn hard_template_tracks_virtual_goal_and_rejects_load() {
        let t = toy_template(true);
        let mut setting = t.initial;
        // Converge at load 1, then hit a sustained 1.5× load.
        for _ in 0..50 {
            setting = t.next_setting(setting, t.measured(setting, 1.0, 0.0));
        }
        let converged = t.overshoot(t.measured(setting, 1.0, 0.0));
        assert!(
            (converged - (1.0 - t.lambda)).abs() < 1e-6,
            "virtual-goal tracking, got {converged}"
        );
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let m = t.measured(setting, 1.5, 0.0);
            worst = worst.max(t.overshoot(m));
            setting = t.next_setting(setting, m);
        }
        // The step disturbance is rejected back inside the hard budget
        // and settles back on the virtual goal.
        let settled = t.overshoot(t.measured(setting, 1.5, 0.0));
        assert!(worst < t.delta(), "worst {} vs delta {}", worst, t.delta());
        assert!(
            (settled - (1.0 - t.lambda)).abs() < 1e-6,
            "settled {settled}"
        );
    }

    #[test]
    fn danger_region_uses_deadbeat_pole() {
        let t = toy_template(true);
        // A measurement far beyond the virtual goal must come back in
        // one model step (pole 0): next measured == virtual target.
        let setting = 35.0;
        let m = t.measured(setting, 1.0, 0.0);
        assert!(m > (1.0 - t.lambda) * t.target, "test premise: in danger");
        let next = t.next_setting(setting, m);
        let recovered = t.measured(next, 1.0, 0.0);
        assert!(
            (recovered - (1.0 - t.lambda) * t.target).abs() < 1e-9,
            "deadbeat recovery, got {recovered}"
        );
    }

    #[test]
    fn template_rejects_degenerate_inputs() {
        let p = toy_profile();
        assert!(SoakTemplate::from_profile("X", false, &[], &p).is_err());
        assert!(SoakTemplate::from_profile("X", false, &[5.0, 5.0], &p).is_err());
        let flat: ProfileSet = [(10.0, 50.0), (20.0, 50.0), (30.0, 50.0), (40.0, 50.0)]
            .into_iter()
            .collect();
        assert!(SoakTemplate::from_profile("X", false, &[10.0, 40.0], &flat).is_err());
    }

    #[test]
    fn cohort_report_distils_sketch() {
        let mut sk = QuantileSketch::new();
        for i in 0..1000 {
            sk.record(0.5 + i as f64 / 1000.0);
        }
        let c = CohortReport::from_sketch(900_000_000, 250, 3, &sk);
        assert_eq!(c.senses, 1000);
        assert_eq!(c.violations, 3);
        assert!((c.p50 - 1.0).abs() < 0.05);
        assert!(c.p99 > c.p50 && c.p999 >= c.p99 && c.max >= c.p999);
    }

    #[test]
    fn render_is_deterministic_and_flags_breaches() {
        let cohort = CohortReport {
            period_us: 900_000_000,
            tenants: 100,
            senses: 9600,
            violations: 12,
            p50: 0.95,
            p99: 1.31,
            p999: 1.40,
            max: 1.55,
            reengages: 4,
            reengage_p99: 6.0,
            burst_p99: 3.0,
            recoveries: 40,
            mttr: 1.5,
            recovery_p99: 4.0,
            unrecovered: 2,
        };
        let report = SoakReport {
            seed: 42,
            tenants_per_scenario: 100,
            horizon_us: 86_400_000_000,
            scenarios: vec![ScenarioSoakReport {
                scenario: "HB6728".into(),
                arm: "corrupt".into(),
                hard: true,
                delta: 1.15,
                tenants: 100,
                cohorts: vec![cohort],
            }],
        };
        assert_eq!(report.render(), report.render());
        assert!(report.render().contains("HARD GATE BREACHED"));
        assert!(report.render().contains("[corrupt]"));
        assert!(report.render().contains("unrec    2"));
        assert_eq!(report.hard_gate_breaches(), vec!["HB6728"]);
        assert_eq!(report.total_senses(), 9600);
        assert_eq!(report.unrecovered_hard_tenants(), 2);

        let mut healthy = report.clone();
        healthy.scenarios[0].cohorts[0].p99 = 1.10;
        assert!(healthy.hard_gate_breaches().is_empty());
        assert!(!healthy.render().contains("BREACHED"));
        healthy.scenarios[0].hard = false;
        assert_eq!(healthy.unrecovered_hard_tenants(), 0);
    }

    #[test]
    fn policy_encoding_roundtrips() {
        for p in [
            SlabGuardPolicy::standard(),
            SlabGuardPolicy::disarmed(),
            SlabGuardPolicy::without_vote(),
            SlabGuardPolicy {
                armed: true,
                vote: false,
                spike_ratio: 63,
                watchdog_epochs: 15,
                divergence_streak: 1,
                cooldown_epochs: 63,
                backoff_doublings: 3,
            },
        ] {
            assert_eq!(SlabGuardPolicy::decode(p.encode()), p, "{p:?}");
        }
        // The standard ladder fits in the documented 24 bits.
        assert!(SlabGuardPolicy::standard().encode() < 1 << 24);
        assert_ne!(
            SlabGuardPolicy::standard().encode(),
            SlabGuardPolicy::disarmed().encode()
        );
    }

    fn clean() -> ActiveFaults {
        ActiveFaults::default()
    }

    fn sensor(f: SensorFault, class: smartconf_runtime::FaultSet) -> ActiveFaults {
        ActiveFaults {
            sensor: Some(f),
            set: class,
            ..ActiveFaults::default()
        }
    }

    #[test]
    fn disarmed_guarded_step_matches_plain_law() {
        let t = toy_template(true);
        let mut slab = SoakSlab::new(&t);
        let mut plain = t.initial;
        for e in 0..60u64 {
            let load = 1.0 + 0.2 * ((e % 7) as f64 / 7.0 - 0.5);
            let jitter = 0.01 * ((e % 5) as f64 / 5.0 - 0.5);
            let out = t.guarded_step(
                SlabGuardPolicy::disarmed(),
                &mut slab,
                &clean(),
                load,
                jitter,
            );
            let m = t.measured(plain, load, jitter);
            plain = t.next_setting(plain, m);
            assert_eq!(out.measured.to_bits(), m.to_bits(), "epoch {e}");
            assert_eq!(slab.setting.to_bits(), plain.to_bits(), "epoch {e}");
        }
    }

    #[test]
    fn admission_and_vote_reject_spikes() {
        let t = toy_template(true);
        let pol = SlabGuardPolicy::standard();
        let mut slab = SoakSlab::new(&t);
        for _ in 0..30 {
            t.guarded_step(pol, &mut slab, &clean(), 1.0, 0.0);
        }
        let converged = slab.setting;
        // A 25× spike reading is rejected at admission: the setting
        // must not move.
        let spike = sensor(SensorFault::Scale(25.0), smartconf_runtime::FaultSet::SPIKE);
        t.guarded_step(pol, &mut slab, &spike, 1.0, 0.0);
        assert_eq!(slab.setting.to_bits(), converged.to_bits());
        // A NaN reading likewise holds.
        let nan = sensor(SensorFault::Nan, smartconf_runtime::FaultSet::NAN);
        t.guarded_step(pol, &mut slab, &nan, 1.0, 0.0);
        assert_eq!(slab.setting.to_bits(), converged.to_bits());
        // A 4× spike passes admission (cut is 8×) but lands beyond the
        // vote's deviation band: the median replaces it and the setting
        // barely moves, while the unvoted ladder swings hard.
        let mild = sensor(SensorFault::Scale(4.0), smartconf_runtime::FaultSet::SPIKE);
        let mut voted = slab;
        t.guarded_step(pol, &mut voted, &mild, 1.0, 0.0);
        let mut unvoted = slab;
        t.guarded_step(
            SlabGuardPolicy::without_vote(),
            &mut unvoted,
            &mild,
            1.0,
            0.0,
        );
        let vote_move = (voted.setting - converged).abs();
        let raw_move = (unvoted.setting - converged).abs();
        assert!(
            vote_move < raw_move / 10.0,
            "vote {vote_move} vs raw {raw_move}"
        );
    }

    #[test]
    fn watchdog_reverts_to_last_safe_under_dropout() {
        let t = toy_template(true);
        let pol = SlabGuardPolicy::standard();
        let mut slab = SoakSlab::new(&t);
        for _ in 0..30 {
            t.guarded_step(pol, &mut slab, &clean(), 1.0, 0.0);
        }
        let safe = slab.last_safe;
        // Perturb the setting, then go blind: after watchdog_epochs
        // consecutive dropouts the plant reverts to last-safe.
        slab.setting = (safe + 5.0).min(t.hi);
        let drop = sensor(SensorFault::Drop, smartconf_runtime::FaultSet::DROPOUT);
        for _ in 0..pol.watchdog_epochs {
            t.guarded_step(pol, &mut slab, &drop, 1.0, 0.0);
        }
        assert_eq!(slab.setting.to_bits(), safe.to_bits());
    }

    #[test]
    fn divergence_falls_back_then_reengages_with_backoff() {
        let t = toy_template(true);
        let pol = SlabGuardPolicy::standard();
        let mut slab = SoakSlab::new(&t);
        // Park the plant far beyond the goal and pin it there by
        // feeding enormous load: the admitted readings violate for
        // divergence_streak epochs and the guard falls back.
        slab.setting = t.hi;
        let mut fell_back = false;
        for _ in 0..pol.divergence_streak + 1 {
            t.guarded_step(pol, &mut slab, &clean(), 4.0, 0.0);
            if slab.setting == t.initial && slab.state.mode == Mode::Fallback {
                fell_back = true;
                break;
            }
        }
        assert!(fell_back, "divergence fallback never fired");
        // Load returns to normal: after the cooldown the guard
        // re-engages and reports the dwell it served.
        let mut dwell = None;
        for _ in 0..20 {
            let out = t.guarded_step(pol, &mut slab, &clean(), 1.0, 0.0);
            if let Some(d) = out.reengaged_dwell {
                dwell = Some(d);
                break;
            }
        }
        assert_eq!(dwell, Some(pol.cooldown_epochs as f64));
        assert_eq!(slab.state.mode, Mode::Engaged);
        // And the controller walks back to the virtual goal.
        for _ in 0..30 {
            t.guarded_step(pol, &mut slab, &clean(), 1.0, 0.0);
        }
        let m = t.measured(slab.setting, 1.0, 0.0);
        assert!((t.overshoot(m) - (1.0 - t.lambda)).abs() < 1e-6);
    }

    #[test]
    fn lag_defers_delivery_and_restart_resets() {
        let t = toy_template(false);
        let pol = SlabGuardPolicy::standard();
        let mut slab = SoakSlab::new(&t);
        slab.begin_epoch(&t, false);
        let before = slab.setting;
        let lag = ActiveFaults {
            lag: Some(2),
            set: smartconf_runtime::FaultSet::LAG,
            ..ActiveFaults::default()
        };
        // Under lag the decision buffers: the plant setting is frozen.
        t.guarded_step(pol, &mut slab, &lag, 1.0, 0.0);
        assert_eq!(slab.setting.to_bits(), before.to_bits());
        assert!(slab.state.has_pending);
        // First clean epoch delivers the buffered decision before
        // sensing.
        t.guarded_step(pol, &mut slab, &clean(), 1.0, 0.0);
        assert!(!slab.state.has_pending);
        assert_ne!(slab.setting.to_bits(), before.to_bits());
        // A restart snaps the plant back to profiled-safe with a
        // fresh cold-cache age.
        let age = slab.begin_epoch(&t, true);
        assert_eq!(age, 0);
        assert_eq!(slab.setting.to_bits(), t.initial.to_bits());
        assert_eq!(slab.begin_epoch(&t, false), 1);
    }

    #[test]
    fn recovery_accounting_tracks_stretches_and_latches() {
        let t = toy_template(true);
        let pol = SlabGuardPolicy::standard();
        let mut slab = SoakSlab::new(&t);
        for _ in 0..30 {
            t.guarded_step(pol, &mut slab, &clean(), 1.0, 0.0);
        }
        // A dropout stretch ends; the converged plant is already back
        // inside the goal, so recovery completes on the first clean
        // epoch.
        let drop = sensor(SensorFault::Drop, smartconf_runtime::FaultSet::DROPOUT);
        for _ in 0..2 {
            t.guarded_step(pol, &mut slab, &drop, 1.0, 0.0);
        }
        let out = t.guarded_step(pol, &mut slab, &clean(), 1.0, 0.0);
        assert_eq!(out.recovered_after, Some(1.0));
        assert!(!slab.is_unrecovered());
        // A stretch followed by a permanently violating plant blows the
        // SLO and latches unrecovered. Feed sustained extreme load with
        // dropped readings so the controller cannot react.
        t.guarded_step(pol, &mut slab, &drop, 1.0, 0.0);
        for _ in 0..RECOVERY_SLO_EPOCHS + 2 {
            t.guarded_step(
                SlabGuardPolicy::disarmed(),
                &mut slab,
                &sensor(SensorFault::Drop, smartconf_runtime::FaultSet::DROPOUT),
                10.0,
                0.0,
            );
        }
        // Those epochs were fault-active, so the clock paused; now run
        // clean disarmed epochs at the same extreme load.
        for _ in 0..RECOVERY_SLO_EPOCHS + 2 {
            t.guarded_step(SlabGuardPolicy::disarmed(), &mut slab, &clean(), 10.0, 0.0);
        }
        assert!(slab.is_unrecovered());
        // Violation bursts close with their length.
        let mut s2 = SoakSlab::new(&t);
        let mut burst = None;
        t.guarded_step(SlabGuardPolicy::disarmed(), &mut s2, &clean(), 1.0, 0.0);
        s2.setting = t.hi;
        for _ in 0..3 {
            // Hold the setting hot with a dropped sensor so the
            // violation persists.
            t.guarded_step(SlabGuardPolicy::disarmed(), &mut s2, &drop, 4.0, 0.0);
        }
        for _ in 0..10 {
            let out = t.guarded_step(SlabGuardPolicy::disarmed(), &mut s2, &clean(), 1.0, 0.0);
            if let Some(b) = out.burst_closed {
                burst = Some(b);
                break;
            }
        }
        let burst = burst.expect("burst should close once load normalises");
        assert!(burst >= 3.0, "burst {burst}");
    }
}
