//! Exhaustive static sweep: finding the best static configuration.
//!
//! Figure 5's "Static-Optimal" bar is "the best static configuration
//! [found] by exhaustively searching all possible PerfConf settings that
//! meet the constraint throughout our two-phase workloads" (§6.3). The
//! sweep runs every candidate as a fleet shard on a machine-sized
//! [`FleetExecutor`] and classifies the outcomes.

use smartconf_runtime::FleetExecutor;

use crate::{RunResult, Scenario, TradeoffDirection};

/// The outcome of sweeping every candidate static setting of a scenario.
#[derive(Debug)]
pub struct StaticSweep {
    /// `(setting, result)` for every candidate, in candidate order.
    pub runs: Vec<(f64, RunResult)>,
    /// Index into `runs` of the best constraint-satisfying setting.
    pub optimal: Option<usize>,
    /// Index into `runs` of the worst constraint-satisfying setting — the
    /// "plausible but poor" static choice.
    pub nonoptimal: Option<usize>,
}

impl StaticSweep {
    /// The best constraint-satisfying run, if any setting satisfied.
    pub fn optimal_run(&self) -> Option<(f64, &RunResult)> {
        self.optimal.map(|i| (self.runs[i].0, &self.runs[i].1))
    }

    /// The worst constraint-satisfying run.
    pub fn nonoptimal_run(&self) -> Option<(f64, &RunResult)> {
        self.nonoptimal.map(|i| (self.runs[i].0, &self.runs[i].1))
    }

    /// How many candidates satisfied the constraint.
    pub fn satisfying_count(&self) -> usize {
        self.runs.iter().filter(|(_, r)| r.constraint_ok).count()
    }
}

/// Runs every candidate static setting of `scenario` (in parallel) and
/// classifies the best and worst constraint-satisfying choices.
pub fn sweep_statics(scenario: &(impl Scenario + Sync + ?Sized), seed: u64) -> StaticSweep {
    let candidates = scenario.candidate_settings();
    let runs: Vec<(f64, RunResult)> = FleetExecutor::available_parallelism()
        .execute(&candidates, |_, &setting| {
            (setting, scenario.run_static(setting, seed))
        });

    let direction = scenario.tradeoff_direction();
    let better = |a: f64, b: f64| match direction {
        TradeoffDirection::HigherIsBetter => a > b,
        TradeoffDirection::LowerIsBetter => a < b,
    };

    let mut optimal: Option<usize> = None;
    let mut nonoptimal: Option<usize> = None;
    for (i, (_, r)) in runs.iter().enumerate() {
        if !r.constraint_ok || !r.tradeoff.is_finite() {
            continue;
        }
        match optimal {
            None => optimal = Some(i),
            Some(j) if better(r.tradeoff, runs[j].1.tradeoff) => optimal = Some(i),
            _ => {}
        }
        match nonoptimal {
            None => nonoptimal = Some(i),
            Some(j) if better(runs[j].1.tradeoff, r.tradeoff) => nonoptimal = Some(i),
            _ => {}
        }
    }
    StaticSweep {
        runs,
        optimal,
        nonoptimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Baseline;
    use smartconf_core::ProfileSet;

    /// Constraint: setting <= 100. Trade-off: setting, higher better.
    struct Toy;
    impl Scenario for Toy {
        fn id(&self) -> &str {
            "TOY"
        }
        fn description(&self) -> &str {
            "toy"
        }
        fn config_name(&self) -> &str {
            "c"
        }
        fn candidate_settings(&self) -> Vec<f64> {
            vec![20.0, 60.0, 100.0, 140.0]
        }
        fn static_setting(&self, _c: Baseline) -> Option<f64> {
            None
        }
        fn tradeoff_direction(&self) -> TradeoffDirection {
            TradeoffDirection::HigherIsBetter
        }
        fn run_static(&self, setting: f64, _seed: u64) -> RunResult {
            RunResult::new(
                format!("s{setting}"),
                setting <= 100.0,
                setting,
                "t",
                TradeoffDirection::HigherIsBetter,
            )
        }
        fn run_smartconf(&self, seed: u64) -> RunResult {
            self.run_static(100.0, seed)
        }
        fn profile(&self, _seed: u64) -> ProfileSet {
            ProfileSet::new()
        }
    }

    #[test]
    fn sweep_finds_optimal_and_nonoptimal() {
        let sweep = sweep_statics(&Toy, 1);
        assert_eq!(sweep.runs.len(), 4);
        assert_eq!(sweep.satisfying_count(), 3);
        let (best, _) = sweep.optimal_run().unwrap();
        assert_eq!(best, 100.0);
        let (worst, _) = sweep.nonoptimal_run().unwrap();
        assert_eq!(worst, 20.0);
    }

    /// A scenario where nothing satisfies.
    struct Hopeless;
    impl Scenario for Hopeless {
        fn id(&self) -> &str {
            "H"
        }
        fn description(&self) -> &str {
            "h"
        }
        fn config_name(&self) -> &str {
            "c"
        }
        fn candidate_settings(&self) -> Vec<f64> {
            vec![1.0, 2.0]
        }
        fn static_setting(&self, _c: Baseline) -> Option<f64> {
            None
        }
        fn tradeoff_direction(&self) -> TradeoffDirection {
            TradeoffDirection::LowerIsBetter
        }
        fn run_static(&self, setting: f64, _seed: u64) -> RunResult {
            RunResult::new("x", false, setting, "t", TradeoffDirection::LowerIsBetter)
        }
        fn run_smartconf(&self, seed: u64) -> RunResult {
            self.run_static(1.0, seed)
        }
        fn profile(&self, _seed: u64) -> ProfileSet {
            ProfileSet::new()
        }
    }

    #[test]
    fn sweep_with_no_satisfying_setting() {
        let sweep = sweep_statics(&Hopeless, 1);
        assert!(sweep.optimal_run().is_none());
        assert!(sweep.nonoptimal_run().is_none());
        assert_eq!(sweep.satisfying_count(), 0);
    }

    /// Lower-is-better directionality.
    struct Latency;
    impl Scenario for Latency {
        fn id(&self) -> &str {
            "L"
        }
        fn description(&self) -> &str {
            "l"
        }
        fn config_name(&self) -> &str {
            "c"
        }
        fn candidate_settings(&self) -> Vec<f64> {
            vec![1.0, 2.0, 3.0]
        }
        fn static_setting(&self, _c: Baseline) -> Option<f64> {
            None
        }
        fn tradeoff_direction(&self) -> TradeoffDirection {
            TradeoffDirection::LowerIsBetter
        }
        fn run_static(&self, setting: f64, _seed: u64) -> RunResult {
            // latency = 10/setting, all satisfy
            RunResult::new(
                "x",
                true,
                10.0 / setting,
                "lat",
                TradeoffDirection::LowerIsBetter,
            )
        }
        fn run_smartconf(&self, seed: u64) -> RunResult {
            self.run_static(3.0, seed)
        }
        fn profile(&self, _seed: u64) -> ProfileSet {
            ProfileSet::new()
        }
    }

    #[test]
    fn lower_is_better_sweep() {
        let sweep = sweep_statics(&Latency, 1);
        assert_eq!(sweep.optimal_run().unwrap().0, 3.0); // lowest latency
        assert_eq!(sweep.nonoptimal_run().unwrap().0, 1.0);
    }
}
