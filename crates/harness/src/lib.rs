//! Shared experiment-harness types for the SmartConf reproduction.
//!
//! Each of the paper's six PerfConf case studies (Table 6) is implemented
//! as a [`Scenario`] in its host-system crate. The bench crate drives the
//! scenarios through this common interface to regenerate Figure 5 (the
//! SmartConf-vs-static speedup comparison), the time-series figures, and
//! the exhaustive static sweep that finds the best static configuration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chart;
mod outcome;
mod report;
mod scenario;
mod sweep;

pub use chart::AsciiChart;
pub use outcome::{RunResult, TradeoffDirection};
pub use report::TextTable;
pub use scenario::{Scenario, StaticChoice};
pub use sweep::{sweep_statics, StaticSweep};
