//! Shared experiment-harness types for the SmartConf reproduction.
//!
//! Each of the paper's six PerfConf case studies (Table 6) is implemented
//! as a [`Scenario`] in its host-system crate. The bench crate drives the
//! scenarios through this common interface to regenerate Figure 5 (the
//! SmartConf-vs-static speedup comparison), the time-series figures, and
//! the exhaustive static sweep that finds the best static configuration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chart;
mod compare;
mod fleet;
mod outcome;
mod report;
mod scenario;
mod soak;
mod sweep;

pub use chart::AsciiChart;
pub use compare::{compare, BaselineRun, Comparison};
pub use fleet::{
    fleet_work_items, run_fleet, FleetReport, FleetWorkItem, Policy, ProfileCache, ShardReport,
};
pub use outcome::{RunResult, TradeoffDirection};
pub use report::{epoch_summary, TextTable};
pub use scenario::Scenario;
pub use soak::{
    CohortReport, ScenarioSoakReport, SlabGuardPolicy, SoakReport, SoakSlab, SoakTemplate,
    StepOutcome, DISTURBANCE_GAIN, LAMBDA_FLOOR, RECOVERY_SLO_EPOCHS,
};
pub use sweep::{sweep_statics, StaticSweep};

// The named static baselines, the per-epoch event log, and the fleet
// executor are runtime types; scenario and bench crates reach them
// through the harness so a comparison run and its structured log travel
// together.
pub use smartconf_runtime::{
    Baseline, Campaign, ChaosSpec, EpochEvent, EpochLog, EpochSummary, FaultClass, FaultPlan,
    FaultSet, FleetExecutor, GuardPolicy, GuardSet, ProfileSchedule, Profiler, SampleMode,
};
