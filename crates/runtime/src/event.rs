//! Structured per-epoch event log.
//!
//! Every time the control plane makes a decision for a channel — whether
//! the channel is SmartConf-controlled or a static baseline — it records
//! one [`EpochEvent`]. The log is the single format the harness and
//! bench crates consume: the configuration trajectory, the measured
//! metric, the tracking error, the pole in effect (context-aware
//! two-pole scheme, paper §5.2), and whether the actuator saturated at
//! its bounds.
//!
//! Fleet runs can last millions of epochs, so the log has two modes:
//! **unbounded** (the default — every event retained, as PR 1 shipped)
//! and **bounded** ([`EpochLog::bounded`] — a ring buffer keeps only the
//! most recent events). In both modes the log maintains streaming
//! per-channel lifetime aggregates ([`EpochSummary`]: violations,
//! settling epoch, mean/max error, saturation), so summary statistics
//! stay exact even after old events are evicted.

use std::collections::VecDeque;

use smartconf_metrics::TimeSeries;

use crate::fault::FaultSet;
use crate::guard::GuardSet;

/// Relative settling band: a channel counts as settled once its tracking
/// error stays within this fraction of the target's magnitude.
const SETTLING_BAND: f64 = 0.02;

/// One control decision for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochEvent {
    /// Per-channel epoch counter (0-based).
    pub epoch: u64,
    /// Simulated (or wall) time of the decision, microseconds.
    pub t_us: u64,
    /// Index of the channel in the owning [`EpochLog`].
    pub channel: u32,
    /// The setting in force after this decision.
    pub setting: f64,
    /// The sensed metric value that drove the decision.
    pub measured: f64,
    /// The effective (possibly virtual) target. `NaN` for static
    /// channels, which have no controller.
    pub target: f64,
    /// Tracking error `target − measured`. `NaN` for static channels.
    pub error: f64,
    /// The pole used on this step (0 inside the danger region of a hard
    /// goal, the synthesized pole otherwise). `NaN` for static channels.
    pub pole: f64,
    /// Whether the decided setting was clamped at the controller's
    /// bounds. Always `false` for static channels.
    pub saturated: bool,
    /// Faults injected on this epoch (empty outside chaos mode).
    pub faults: FaultSet,
    /// Resilience guards that activated on this epoch (empty outside
    /// chaos mode).
    pub guards: GuardSet,
}

/// Streaming lifetime aggregates for one channel, maintained on every
/// [`EpochLog::push`] — exact even when the bounded log has evicted the
/// underlying events.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochSummary {
    /// Total decisions made for this channel (including evicted events).
    pub epochs: u64,
    /// Decisions whose setting was clamped at the controller bounds.
    pub saturated: u64,
    /// Epochs whose finite tracking error was negative — i.e. the
    /// measured metric exceeded its (possibly virtual) target.
    pub violations: u64,
    /// Epochs until the tracking error last left the ±2% settling band
    /// around the target (0 when the error never left the band, e.g.
    /// static channels with no controller).
    pub settled_after: u64,
    /// Mean of the finite tracking errors (0 when there were none).
    pub mean_error: f64,
    /// Largest absolute finite tracking error, if any epoch had one.
    pub max_abs_error: Option<f64>,
    /// The last decided setting, if the channel ever decided.
    pub last_setting: Option<f64>,
    /// Epochs on which at least one fault was injected.
    pub faults_injected: u64,
    /// Epochs on which at least one resilience guard activated.
    pub guard_activations: u64,
    /// Epochs spent in divergence fallback (holding the profiled-safe
    /// static setting).
    pub fallback_epochs: u64,
    /// Controller re-engagements after a fallback cooldown
    /// ([`GuardSet::REENGAGE`] epochs).
    pub reengages: u64,
    /// Mean epochs from a fallback entry to its re-engage (0 when the
    /// channel never re-engaged) — the "time to re-arm the controller"
    /// half of the recovery SLO.
    pub mean_epochs_to_reengage: f64,
    /// Longest fallback dwell that ended in a re-engage, epochs.
    pub max_epochs_to_reengage: u64,
    /// Number of violation bursts: maximal runs of consecutive epochs
    /// whose finite tracking error was negative (an epoch without a
    /// finite violation — including a missed reading — ends the run).
    pub violation_bursts: u64,
    /// Longest violation burst, epochs.
    pub violation_burst_max: u64,
    /// 99th-percentile violation-burst length, epochs, from a histogram
    /// whose top bin clamps at [`BURST_BINS`] (so values ≥ that read
    /// "at least"); the true maximum is in
    /// [`violation_burst_max`](Self::violation_burst_max).
    pub violation_burst_p99: u64,
    /// Per-fault-class recoveries, indexed by [`FaultSet`] bit (see
    /// [`FaultSet::BIT_LABELS`]): how many faulty stretches involving
    /// that class ended in a settled clean epoch.
    pub recoveries: [u64; 8],
    /// Per-fault-class mean time to recover, epochs, indexed like
    /// [`recoveries`](Self::recoveries): from the first epoch of a
    /// contiguous faulty stretch to the first following clean epoch
    /// whose error is back inside the ±2% settling band (0 when the
    /// class never recovered). A stretch under several classes counts
    /// toward each.
    pub mttr: [f64; 8],
    /// Whether a faulty stretch was still unrecovered (no settled clean
    /// epoch after it) when the run ended.
    pub unrecovered: bool,
}

/// Top bin of the violation-burst histogram: burst lengths at or beyond
/// this clamp into the last bin, so
/// [`EpochSummary::violation_burst_p99`] saturates here while
/// [`EpochSummary::violation_burst_max`] stays exact.
pub const BURST_BINS: u64 = 32;

/// Internal accumulator behind [`EpochSummary`].
#[derive(Debug, Clone, Copy, Default)]
struct ChannelStats {
    epochs: u64,
    saturated: u64,
    violations: u64,
    settled_after: u64,
    error_sum: f64,
    error_count: u64,
    max_abs_error: f64,
    last_setting: f64,
    faults_injected: u64,
    guard_activations: u64,
    fallback_epochs: u64,
    /// Epoch of the last unmatched FALLBACK_ENTER, while in fallback.
    fallback_entered_at: Option<u64>,
    reengages: u64,
    reengage_sum: u64,
    reengage_max: u64,
    /// Length of the violation burst currently being extended.
    current_burst: u64,
    /// Burst-length histogram: index `i` counts bursts of length `i+1`,
    /// lengths ≥ [`BURST_BINS`] clamp into the last bin. Always covers
    /// every burst including the one in progress.
    burst_hist: [u32; BURST_BINS as usize],
    burst_count: u64,
    burst_max: u64,
    /// First epoch of the contiguous faulty stretch awaiting recovery.
    outage_start: Option<u64>,
    /// Union of fault classes injected during that stretch.
    outage_classes: FaultSet,
    recovery_sum: [u64; 8],
    recovery_count: [u64; 8],
}

impl ChannelStats {
    fn update(&mut self, e: &EpochEvent) {
        self.epochs += 1;
        self.saturated += e.saturated as u64;
        self.last_setting = e.setting;
        self.faults_injected += (!e.faults.is_empty()) as u64;
        self.guard_activations += (!e.guards.is_empty()) as u64;
        self.fallback_epochs += e.guards.contains(GuardSet::FALLBACK) as u64;

        // Epochs-to-reengage: pair each fallback entry with the next
        // re-engage. A single epoch can carry both (re-engage, then a
        // fresh divergence re-enters), so the close runs before the open.
        if e.guards.contains(GuardSet::REENGAGE) {
            if let Some(entered) = self.fallback_entered_at.take() {
                let dwell = e.epoch.saturating_sub(entered);
                self.reengages += 1;
                self.reengage_sum += dwell;
                self.reengage_max = self.reengage_max.max(dwell);
            }
        }
        if e.guards.contains(GuardSet::FALLBACK_ENTER) {
            self.fallback_entered_at = Some(e.epoch);
        }

        let settled = e.error.is_finite() && e.error.abs() <= SETTLING_BAND * e.target.abs();
        // MTTR: a contiguous faulty stretch opens on its first fault
        // epoch and recovers at the first *clean* epoch back inside the
        // settling band; the elapsed epochs count toward every fault
        // class injected during the stretch.
        if !e.faults.is_empty() {
            if self.outage_start.is_none() {
                self.outage_start = Some(e.epoch);
                self.outage_classes = FaultSet::default();
            }
            self.outage_classes.insert(e.faults);
        } else if settled {
            if let Some(start) = self.outage_start.take() {
                let epochs = e.epoch.saturating_sub(start);
                let bits = self.outage_classes.bits();
                for class in 0..8 {
                    if bits & (1 << class) != 0 {
                        self.recovery_sum[class] += epochs;
                        self.recovery_count[class] += 1;
                    }
                }
            }
        }

        if e.error.is_finite() {
            self.error_count += 1;
            self.error_sum += e.error;
            let abs = e.error.abs();
            if abs > self.max_abs_error {
                self.max_abs_error = abs;
            }
            if e.error < 0.0 {
                self.violations += 1;
                // Extend (or open) the current burst, moving its
                // histogram entry so the histogram always covers the
                // burst in progress.
                if self.current_burst > 0 {
                    self.burst_hist[Self::burst_bin(self.current_burst)] -= 1;
                } else {
                    self.burst_count += 1;
                }
                self.current_burst += 1;
                self.burst_hist[Self::burst_bin(self.current_burst)] += 1;
                self.burst_max = self.burst_max.max(self.current_burst);
            } else {
                self.current_burst = 0;
            }
            if abs > SETTLING_BAND * e.target.abs() {
                self.settled_after = e.epoch + 1;
            }
        } else {
            self.current_burst = 0;
        }
    }

    fn burst_bin(len: u64) -> usize {
        (len.min(BURST_BINS) - 1) as usize
    }

    /// Smallest burst length whose upper tail holds at least 1% of the
    /// bursts (the top bin saturates at [`BURST_BINS`]).
    fn burst_p99(&self) -> u64 {
        if self.burst_count == 0 {
            return 0;
        }
        let tail_target = self.burst_count.div_ceil(100);
        let mut tail = 0u64;
        for bin in (0..BURST_BINS as usize).rev() {
            tail += u64::from(self.burst_hist[bin]);
            if tail >= tail_target {
                return bin as u64 + 1;
            }
        }
        1
    }

    fn summary(&self) -> EpochSummary {
        let mut mttr = [0.0f64; 8];
        for (class, slot) in mttr.iter_mut().enumerate() {
            if self.recovery_count[class] > 0 {
                *slot = self.recovery_sum[class] as f64 / self.recovery_count[class] as f64;
            }
        }
        EpochSummary {
            epochs: self.epochs,
            saturated: self.saturated,
            violations: self.violations,
            settled_after: self.settled_after,
            mean_error: if self.error_count == 0 {
                0.0
            } else {
                self.error_sum / self.error_count as f64
            },
            max_abs_error: (self.error_count > 0).then_some(self.max_abs_error),
            last_setting: (self.epochs > 0).then_some(self.last_setting),
            faults_injected: self.faults_injected,
            guard_activations: self.guard_activations,
            fallback_epochs: self.fallback_epochs,
            reengages: self.reengages,
            mean_epochs_to_reengage: if self.reengages == 0 {
                0.0
            } else {
                self.reengage_sum as f64 / self.reengages as f64
            },
            max_epochs_to_reengage: self.reengage_max,
            violation_bursts: self.burst_count,
            violation_burst_max: self.burst_max,
            violation_burst_p99: self.burst_p99(),
            recoveries: self.recovery_count,
            mttr,
            unrecovered: self.outage_start.is_some(),
        }
    }
}

/// The per-run log of every channel's epochs, in decision order.
///
/// # Bounded mode
///
/// ```
/// use smartconf_runtime::{EpochEvent, EpochLog};
///
/// // Keep only the 100 most recent events, but aggregate all of them.
/// let mut log = EpochLog::bounded(vec!["conf".into()], 100);
/// for epoch in 0..1_000u64 {
///     log.push(EpochEvent {
///         epoch,
///         t_us: epoch * 1_000,
///         channel: 0,
///         setting: 50.0,
///         measured: 90.0,
///         target: 100.0,
///         error: 10.0,
///         pole: 0.5,
///         saturated: epoch % 2 == 0,
///         faults: Default::default(),
///         guards: Default::default(),
///     });
/// }
/// assert_eq!(log.len(), 100);           // raw events: bounded
/// let s = log.summary("conf").unwrap(); // aggregates: full lifetime
/// assert_eq!(s.epochs, 1_000);
/// assert_eq!(s.saturated, 500);
/// assert_eq!(log.saturation_fraction("conf"), Some(0.5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpochLog {
    channels: Vec<String>,
    events: VecDeque<EpochEvent>,
    capacity: Option<usize>,
    dropped: u64,
    stats: Vec<ChannelStats>,
}

impl EpochLog {
    /// Creates an empty unbounded log over the given channel names.
    pub fn new(channels: Vec<String>) -> Self {
        let stats = vec![ChannelStats::default(); channels.len()];
        EpochLog {
            channels,
            events: VecDeque::new(),
            capacity: None,
            dropped: 0,
            stats,
        }
    }

    /// Creates an empty log that retains at most `capacity` raw events
    /// (ring buffer: the oldest event is evicted on overflow), while the
    /// per-channel [`EpochSummary`] aggregates keep covering every event
    /// ever pushed. A capacity of 0 keeps aggregates only.
    pub fn bounded(channels: Vec<String>, capacity: usize) -> Self {
        let mut log = EpochLog::new(channels);
        log.capacity = Some(capacity);
        // Allocate the ring up front so the steady-state push path never
        // reallocates (at capacity it is a pop_front + push_back pair).
        log.events.reserve_exact(capacity);
        log
    }

    /// The raw-event retention limit, if this log is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Appends one event (the control plane calls this).
    pub fn push(&mut self, event: EpochEvent) {
        debug_assert!((event.channel as usize) < self.channels.len());
        if let Some(stats) = self.stats.get_mut(event.channel as usize) {
            stats.update(&event);
        }
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    /// Channel names, in [`EpochEvent::channel`] index order.
    pub fn channels(&self) -> &[String] {
        &self.channels
    }

    /// The retained events, oldest first (all of them when unbounded).
    pub fn events(&self) -> impl Iterator<Item = &EpochEvent> {
        self.events.iter()
    }

    /// Number of retained events across channels.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no decisions were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Lifetime event count across channels, including evicted events.
    pub fn total_events(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Events evicted (or skipped, at capacity 0) by the ring buffer.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Index of a channel by name.
    pub fn channel_index(&self, name: &str) -> Option<usize> {
        self.channels.iter().position(|c| c == name)
    }

    /// Lifetime aggregates for one channel, exact regardless of mode.
    pub fn summary(&self, name: &str) -> Option<EpochSummary> {
        self.channel_index(name).map(|i| self.stats[i].summary())
    }

    /// Lifetime aggregates for every channel, in channel-index order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, EpochSummary)> {
        self.channels
            .iter()
            .zip(&self.stats)
            .map(|(name, stats)| (name.as_str(), stats.summary()))
    }

    /// Retained events of one channel, in decision order.
    pub fn events_for<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a EpochEvent> + 'a {
        let idx = self.channel_index(name).map(|i| i as u32);
        self.events.iter().filter(move |e| Some(e.channel) == idx)
    }

    /// The last decided setting of a channel, if it ever decided.
    pub fn last_setting(&self, name: &str) -> Option<f64> {
        self.summary(name).and_then(|s| s.last_setting)
    }

    /// Fraction of a channel's lifetime epochs that saturated at the
    /// bounds: `Some(0.0)` for a known channel with no epochs, `None`
    /// for an unknown channel name (so typos don't read as "never
    /// saturated").
    pub fn saturation_fraction(&self, name: &str) -> Option<f64> {
        self.summary(name).map(|s| {
            if s.epochs > 0 {
                s.saturated as f64 / s.epochs as f64
            } else {
                0.0
            }
        })
    }

    /// Largest absolute tracking error over a channel's lifetime epochs
    /// (ignores the `NaN` errors of static channels). `None` both for a
    /// channel with no finite errors and for an unknown name; the debug
    /// assertion distinguishes the two so misspelled channel names fail
    /// loudly in tests instead of reading as "no error".
    pub fn max_abs_error(&self, name: &str) -> Option<f64> {
        let summary = self.summary(name);
        debug_assert!(
            summary.is_some(),
            "max_abs_error queried for unknown channel {name:?} (channels: {:?})",
            self.channels
        );
        summary.and_then(|s| s.max_abs_error)
    }

    /// The setting trajectory as a time series named after the channel
    /// (this is the "conf" series the figure drivers plot). Covers the
    /// retained events only.
    pub fn setting_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, name, |e| e.setting)
    }

    /// The sensed-metric trajectory, named `<channel>.measured`.
    pub fn measured_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, &format!("{name}.measured"), |e| e.measured)
    }

    /// The tracking-error trajectory, named `<channel>.error`.
    pub fn error_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, &format!("{name}.error"), |e| e.error)
    }

    /// The pole-in-effect trajectory, named `<channel>.pole`.
    pub fn pole_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, &format!("{name}.pole"), |e| e.pole)
    }

    fn series_of(&self, channel: &str, series: &str, f: impl Fn(&EpochEvent) -> f64) -> TimeSeries {
        let mut ts = TimeSeries::new(series);
        for e in self.events_for(channel) {
            ts.push(e.t_us, f(e));
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(channel: u32, epoch: u64, t_us: u64, setting: f64) -> EpochEvent {
        EpochEvent {
            epoch,
            t_us,
            channel,
            setting,
            measured: setting * 2.0,
            target: 100.0,
            error: 100.0 - setting * 2.0,
            pole: 0.5,
            saturated: setting >= 90.0,
            faults: FaultSet::default(),
            guards: GuardSet::default(),
        }
    }

    fn log() -> EpochLog {
        let mut log = EpochLog::new(vec!["a".into(), "b".into()]);
        log.push(event(0, 0, 0, 10.0));
        log.push(event(1, 0, 500, 50.0));
        log.push(event(0, 1, 1_000, 95.0));
        log
    }

    #[test]
    fn per_channel_views() {
        let log = log();
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.channel_index("b"), Some(1));
        assert_eq!(log.events_for("a").count(), 2);
        assert_eq!(log.last_setting("a"), Some(95.0));
        assert_eq!(log.last_setting("b"), Some(50.0));
        assert_eq!(log.last_setting("missing"), None);
        assert_eq!(log.saturation_fraction("a"), Some(0.5));
        assert_eq!(log.saturation_fraction("missing"), None);
    }

    #[test]
    fn fault_and_guard_aggregates() {
        let mut log = EpochLog::new(vec!["a".into()]);
        let mut e0 = event(0, 0, 0, 10.0);
        e0.faults.insert(FaultSet::DROPOUT);
        e0.guards.insert(GuardSet::MISSED);
        log.push(e0);
        let mut e1 = event(0, 1, 1, 10.0);
        e1.guards.insert(GuardSet::FALLBACK);
        log.push(e1);
        log.push(event(0, 2, 2, 10.0));
        let s = log.summary("a").unwrap();
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.guard_activations, 2);
        assert_eq!(s.fallback_epochs, 1);
    }

    #[test]
    fn series_extraction() {
        let log = log();
        let s = log.setting_series("a");
        assert_eq!(s.name(), "a");
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(1_000), Some(95.0));
        assert_eq!(log.measured_series("b").name(), "b.measured");
        assert_eq!(log.error_series("a").len(), 2);
        assert_eq!(log.pole_series("a").value_at(0), Some(0.5));
    }

    #[test]
    fn max_abs_error_skips_nan() {
        let mut log = EpochLog::new(vec!["a".into()]);
        let mut e = event(0, 0, 0, 10.0);
        e.error = f64::NAN;
        log.push(e);
        assert_eq!(log.max_abs_error("a"), None);
        log.push(event(0, 1, 1, 40.0));
        assert_eq!(log.max_abs_error("a"), Some(20.0));
    }

    #[test]
    fn bounded_evicts_oldest_but_aggregates_everything() {
        let mut log = EpochLog::bounded(vec!["a".into()], 3);
        for k in 0..10u64 {
            log.push(event(0, k, k * 100, k as f64 * 10.0));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_events(), 10);
        assert_eq!(log.dropped_events(), 7);
        // Retained window is the most recent three events.
        let retained: Vec<u64> = log.events().map(|e| e.epoch).collect();
        assert_eq!(retained, vec![7, 8, 9]);
        // Aggregates still cover all ten: max |error| is at setting 0
        // (error = 100 − 0), which was evicted long ago.
        let s = log.summary("a").unwrap();
        assert_eq!(s.epochs, 10);
        assert_eq!(s.max_abs_error, Some(100.0));
        assert_eq!(s.saturated, 1); // only setting 90 saturates
        assert_eq!(log.last_setting("a"), Some(90.0));
    }

    #[test]
    fn bounded_and_unbounded_summaries_agree() {
        let mut full = EpochLog::new(vec!["a".into()]);
        let mut ring = EpochLog::bounded(vec!["a".into()], 2);
        for k in 0..50u64 {
            let e = event(0, k, k, (k % 13) as f64 * 9.0);
            full.push(e);
            ring.push(e);
        }
        assert_eq!(full.summary("a"), ring.summary("a"));
        assert_eq!(full.saturation_fraction("a"), ring.saturation_fraction("a"));
        assert_eq!(full.max_abs_error("a"), ring.max_abs_error("a"));
    }

    #[test]
    fn capacity_zero_keeps_aggregates_only() {
        let mut log = EpochLog::bounded(vec!["a".into()], 0);
        log.push(event(0, 0, 0, 10.0));
        assert!(log.is_empty());
        assert_eq!(log.total_events(), 1);
        assert_eq!(log.summary("a").unwrap().epochs, 1);
    }

    #[test]
    fn reengage_dwell_is_tracked_per_entry() {
        let mut log = EpochLog::new(vec!["a".into()]);
        let mut push = |epoch: u64, bits: &[GuardSet]| {
            let mut e = event(0, epoch, epoch, 50.0);
            for b in bits {
                e.guards.insert(*b);
            }
            log.push(e);
        };
        // Entry at 2, re-engage at 7 (dwell 5); entry at 10, re-engage
        // at 20 (dwell 10) — the backed-off second entry.
        push(2, &[GuardSet::FALLBACK_ENTER]);
        for epoch in 3..7 {
            push(epoch, &[GuardSet::FALLBACK]);
        }
        push(7, &[GuardSet::REENGAGE]);
        push(10, &[GuardSet::FALLBACK_ENTER]);
        push(20, &[GuardSet::REENGAGE]);
        let s = log.summary("a").unwrap();
        assert_eq!(s.reengages, 2);
        assert_eq!(s.mean_epochs_to_reengage, 7.5);
        assert_eq!(s.max_epochs_to_reengage, 10);
    }

    #[test]
    fn reengage_and_reenter_on_one_epoch_pair_correctly() {
        let mut log = EpochLog::new(vec!["a".into()]);
        let mut e = event(0, 5, 5, 50.0);
        e.guards.insert(GuardSet::FALLBACK_ENTER);
        log.push(e);
        // Epoch 9 both re-engages the old hold and re-enters a new one.
        let mut e = event(0, 9, 9, 50.0);
        e.guards.insert(GuardSet::REENGAGE);
        e.guards.insert(GuardSet::FALLBACK_ENTER);
        log.push(e);
        let mut e = event(0, 12, 12, 50.0);
        e.guards.insert(GuardSet::REENGAGE);
        log.push(e);
        let s = log.summary("a").unwrap();
        assert_eq!(s.reengages, 2);
        assert_eq!(s.max_epochs_to_reengage, 4);
        assert_eq!(s.mean_epochs_to_reengage, 3.5);
    }

    #[test]
    fn violation_bursts_histogram_max_and_p99() {
        let mut log = EpochLog::new(vec!["a".into()]);
        let mut epoch = 0u64;
        // error = 100 − 2·setting: setting 60 violates, setting 50 is in
        // band. 99 one-epoch bursts and one four-epoch burst: p99 must
        // reach into the single long burst.
        for _ in 0..99 {
            log.push(event(0, epoch, epoch, 60.0));
            epoch += 1;
            log.push(event(0, epoch, epoch, 50.0));
            epoch += 1;
        }
        for _ in 0..4 {
            log.push(event(0, epoch, epoch, 60.0));
            epoch += 1;
        }
        let s = log.summary("a").unwrap();
        assert_eq!(s.violation_bursts, 100);
        assert_eq!(s.violation_burst_max, 4);
        assert_eq!(s.violation_burst_p99, 4);
        assert_eq!(s.violations, 99 + 4);
    }

    #[test]
    fn open_burst_and_long_burst_clamp() {
        let mut log = EpochLog::new(vec!["a".into()]);
        // One still-open 40-epoch burst: counted, max exact, p99 clamped
        // at the top histogram bin.
        for epoch in 0..40u64 {
            log.push(event(0, epoch, epoch, 60.0));
        }
        let s = log.summary("a").unwrap();
        assert_eq!(s.violation_bursts, 1);
        assert_eq!(s.violation_burst_max, 40);
        assert_eq!(s.violation_burst_p99, BURST_BINS);
    }

    #[test]
    fn nan_error_ends_a_burst() {
        let mut log = EpochLog::new(vec!["a".into()]);
        log.push(event(0, 0, 0, 60.0));
        let mut e = event(0, 1, 1, 60.0);
        e.error = f64::NAN;
        log.push(e);
        log.push(event(0, 2, 2, 60.0));
        let s = log.summary("a").unwrap();
        assert_eq!(s.violation_bursts, 2);
        assert_eq!(s.violation_burst_max, 1);
    }

    #[test]
    fn mttr_attributes_recovery_to_every_class_in_the_stretch() {
        let mut log = EpochLog::new(vec!["a".into()]);
        // Clean settled epoch (setting 50 ⇒ error 0).
        log.push(event(0, 0, 0, 50.0));
        // Faulty stretch 1..4: dropout, then dropout+lag.
        let mut e = event(0, 1, 1, 60.0);
        e.faults.insert(FaultSet::DROPOUT);
        log.push(e);
        let mut e = event(0, 2, 2, 60.0);
        e.faults.insert(FaultSet::DROPOUT);
        e.faults.insert(FaultSet::LAG);
        log.push(e);
        let mut e = event(0, 3, 3, 60.0);
        e.faults.insert(FaultSet::LAG);
        log.push(e);
        // Clean but NOT settled (setting 60 ⇒ error −20): recovery waits.
        log.push(event(0, 4, 4, 60.0));
        // Clean and settled: the stretch recovers, 5 − 1 = 4 epochs.
        log.push(event(0, 5, 5, 50.0));
        let s = log.summary("a").unwrap();
        let dropout = 0usize; // FaultSet bit order
        let lag = 4usize;
        assert_eq!(s.recoveries[dropout], 1);
        assert_eq!(s.recoveries[lag], 1);
        assert_eq!(s.mttr[dropout], 4.0);
        assert_eq!(s.mttr[lag], 4.0);
        assert_eq!(s.recoveries[1], 0, "stale never fired");
        assert!(!s.unrecovered);
    }

    #[test]
    fn open_outage_reads_unrecovered() {
        let mut log = EpochLog::new(vec!["a".into()]);
        log.push(event(0, 0, 0, 50.0));
        let mut e = event(0, 1, 1, 60.0);
        e.faults.insert(FaultSet::NAN);
        log.push(e);
        let s = log.summary("a").unwrap();
        assert!(s.unrecovered);
        assert_eq!(s.recoveries[2], 0);
        // A later settled clean epoch flips it.
        log.push(event(0, 2, 2, 50.0));
        let s = log.summary("a").unwrap();
        assert!(!s.unrecovered);
        assert_eq!(s.recoveries[2], 1);
        assert_eq!(s.mttr[2], 1.0);
    }

    #[test]
    fn violations_and_settling() {
        let mut log = EpochLog::new(vec!["a".into()]);
        // error = 100 − 2·setting: setting 60 ⇒ error −20 (violation);
        // setting 50 ⇒ error 0 (in band).
        log.push(event(0, 0, 0, 60.0));
        log.push(event(0, 1, 1, 50.0));
        log.push(event(0, 2, 2, 50.0));
        let s = log.summary("a").unwrap();
        assert_eq!(s.violations, 1);
        assert_eq!(s.settled_after, 1); // left the band at epoch 0 only
        assert!((s.mean_error - (-20.0 / 3.0)).abs() < 1e-12);
    }
}
