//! Structured per-epoch event log.
//!
//! Every time the control plane makes a decision for a channel — whether
//! the channel is SmartConf-controlled or a static baseline — it records
//! one [`EpochEvent`]. The log is the single format the harness and
//! bench crates consume: the configuration trajectory, the measured
//! metric, the tracking error, the pole in effect (context-aware
//! two-pole scheme, paper §5.2), and whether the actuator saturated at
//! its bounds.

use smartconf_metrics::TimeSeries;

/// One control decision for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochEvent {
    /// Per-channel epoch counter (0-based).
    pub epoch: u64,
    /// Simulated (or wall) time of the decision, microseconds.
    pub t_us: u64,
    /// Index of the channel in the owning [`EpochLog`].
    pub channel: u32,
    /// The setting in force after this decision.
    pub setting: f64,
    /// The sensed metric value that drove the decision.
    pub measured: f64,
    /// The effective (possibly virtual) target. `NaN` for static
    /// channels, which have no controller.
    pub target: f64,
    /// Tracking error `target − measured`. `NaN` for static channels.
    pub error: f64,
    /// The pole used on this step (0 inside the danger region of a hard
    /// goal, the synthesized pole otherwise). `NaN` for static channels.
    pub pole: f64,
    /// Whether the decided setting was clamped at the controller's
    /// bounds. Always `false` for static channels.
    pub saturated: bool,
}

/// The per-run log of every channel's epochs, in decision order.
#[derive(Debug, Clone, Default)]
pub struct EpochLog {
    channels: Vec<String>,
    events: Vec<EpochEvent>,
}

impl EpochLog {
    /// Creates an empty log over the given channel names.
    pub fn new(channels: Vec<String>) -> Self {
        EpochLog {
            channels,
            events: Vec::new(),
        }
    }

    /// Appends one event (the control plane calls this).
    pub fn push(&mut self, event: EpochEvent) {
        debug_assert!((event.channel as usize) < self.channels.len());
        self.events.push(event);
    }

    /// Channel names, in [`EpochEvent::channel`] index order.
    pub fn channels(&self) -> &[String] {
        &self.channels
    }

    /// All events, in decision order.
    pub fn events(&self) -> &[EpochEvent] {
        &self.events
    }

    /// Total number of events across channels.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no decisions were logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Index of a channel by name.
    pub fn channel_index(&self, name: &str) -> Option<usize> {
        self.channels.iter().position(|c| c == name)
    }

    /// Events of one channel, in decision order.
    pub fn events_for<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a EpochEvent> + 'a {
        let idx = self.channel_index(name).map(|i| i as u32);
        self.events.iter().filter(move |e| Some(e.channel) == idx)
    }

    /// The last decided setting of a channel, if it ever decided.
    pub fn last_setting(&self, name: &str) -> Option<f64> {
        self.events_for(name).last().map(|e| e.setting)
    }

    /// Fraction of a channel's epochs that saturated at the bounds.
    /// Returns 0 for a channel with no epochs.
    pub fn saturation_fraction(&self, name: &str) -> f64 {
        let (mut total, mut saturated) = (0u64, 0u64);
        for e in self.events_for(name) {
            total += 1;
            saturated += e.saturated as u64;
        }
        if total == 0 {
            0.0
        } else {
            saturated as f64 / total as f64
        }
    }

    /// Largest absolute tracking error over a channel's epochs (ignores
    /// the `NaN` errors of static channels).
    pub fn max_abs_error(&self, name: &str) -> Option<f64> {
        self.events_for(name)
            .map(|e| e.error.abs())
            .filter(|e| e.is_finite())
            .max_by(f64::total_cmp)
    }

    /// The setting trajectory as a time series named after the channel
    /// (this is the "conf" series the figure drivers plot).
    pub fn setting_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, name, |e| e.setting)
    }

    /// The sensed-metric trajectory, named `<channel>.measured`.
    pub fn measured_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, &format!("{name}.measured"), |e| e.measured)
    }

    /// The tracking-error trajectory, named `<channel>.error`.
    pub fn error_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, &format!("{name}.error"), |e| e.error)
    }

    /// The pole-in-effect trajectory, named `<channel>.pole`.
    pub fn pole_series(&self, name: &str) -> TimeSeries {
        self.series_of(name, &format!("{name}.pole"), |e| e.pole)
    }

    fn series_of(&self, channel: &str, series: &str, f: impl Fn(&EpochEvent) -> f64) -> TimeSeries {
        let mut ts = TimeSeries::new(series);
        for e in self.events_for(channel) {
            ts.push(e.t_us, f(e));
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(channel: u32, epoch: u64, t_us: u64, setting: f64) -> EpochEvent {
        EpochEvent {
            epoch,
            t_us,
            channel,
            setting,
            measured: setting * 2.0,
            target: 100.0,
            error: 100.0 - setting * 2.0,
            pole: 0.5,
            saturated: setting >= 90.0,
        }
    }

    fn log() -> EpochLog {
        let mut log = EpochLog::new(vec!["a".into(), "b".into()]);
        log.push(event(0, 0, 0, 10.0));
        log.push(event(1, 0, 500, 50.0));
        log.push(event(0, 1, 1_000, 95.0));
        log
    }

    #[test]
    fn per_channel_views() {
        let log = log();
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.channel_index("b"), Some(1));
        assert_eq!(log.events_for("a").count(), 2);
        assert_eq!(log.last_setting("a"), Some(95.0));
        assert_eq!(log.last_setting("b"), Some(50.0));
        assert_eq!(log.last_setting("missing"), None);
        assert_eq!(log.saturation_fraction("a"), 0.5);
        assert_eq!(log.saturation_fraction("missing"), 0.0);
    }

    #[test]
    fn series_extraction() {
        let log = log();
        let s = log.setting_series("a");
        assert_eq!(s.name(), "a");
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(1_000), Some(95.0));
        assert_eq!(log.measured_series("b").name(), "b.measured");
        assert_eq!(log.error_series("a").len(), 2);
        assert_eq!(log.pole_series("a").value_at(0), Some(0.5));
    }

    #[test]
    fn max_abs_error_skips_nan() {
        let mut log = EpochLog::new(vec!["a".into()]);
        let mut e = event(0, 0, 0, 10.0);
        e.error = f64::NAN;
        log.push(e);
        assert_eq!(log.max_abs_error("a"), None);
        log.push(event(0, 1, 1, 40.0));
        assert_eq!(log.max_abs_error("a"), Some(20.0));
    }
}
