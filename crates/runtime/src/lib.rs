//! # smartconf-runtime — the epoch-driven control-plane runtime
//!
//! The paper's central claim is that *one* synthesis recipe serves every
//! performance-sensitive configuration; this crate is the corresponding
//! claim about the surrounding loop: one [`ControlPlane`] owns the
//! sense→decide→actuate epoch for every scenario, so adding a workload
//! means implementing the [`Plant`] trait (a sensor and an actuator per
//! channel), not re-implementing control glue.
//!
//! - [`Plant`] — the system under control: sense the metric, apply the
//!   configuration, advance one epoch.
//! - [`ControlPlane`] — drives one or more controllers over a plant,
//!   coordinating channels that share a super-hard goal (paper §5.4) and
//!   recording every decision.
//! - [`Decider`] — how a channel decides: a static baseline, a direct
//!   SmartConf, or a deputy-re-anchored indirect SmartConf (§5.3).
//! - [`Baseline`] — the named static comparison runs of Figure 5.
//! - [`EpochEvent`]/[`EpochLog`] — the structured per-epoch record
//!   (setting, measured metric, error, pole in effect, saturation),
//!   convertible to `smartconf-metrics` time series; optionally bounded
//!   (ring buffer) with streaming per-channel [`EpochSummary`] aggregates.
//! - [`Profiler`]/[`ProfileSchedule`] — the shared §6.1 profiling loop
//!   (4 settings × N measurements) that scenarios declare instead of
//!   re-implementing.
//! - [`FleetExecutor`] — deterministic multi-threaded sharding of
//!   (scenario × seed × goal-variant) work items: results merge in
//!   work-item order, so output is byte-identical at 1 vs N threads.
//! - [`FaultPlan`]/[`FaultInjector`] — the deterministic fault plane:
//!   declarative per-channel, per-epoch-window faults (sensor dropout,
//!   stale repeats, NaN/spike corruption, actuator lag and saturation,
//!   goal flaps, plant restarts), evaluated as a pure function of
//!   `(seed, plan, channel, epoch)` so chaos runs replay exactly.
//! - [`GuardPolicy`]/[`ChaosSpec`] — the matching resilience guards
//!   (admission filtering, stale watchdog, anti-windup, divergence
//!   fallback to the profiled-safe setting, restart recovery, optional
//!   shedding of already-admitted work), armed via
//!   [`ControlPlane::enable_chaos`].
//! - [`EventPlane`]/[`PlaneEvent`] — the event kernel: the same plane
//!   scheduled on the `smartconf-simkernel` calendar, one `Sense` per
//!   channel per [`period_us`](ControlPlane::period_us)
//!   ([`channel_with_period`](ControlPlaneBuilder::channel_with_period)),
//!   fault windows as scheduled edge events. The lockstep
//!   [`epoch`](ControlPlane::epoch)/[`run`](ControlPlane::run) API is a
//!   compatibility shim over the same decide path; with uniform periods
//!   the two produce byte-identical logs.
//! - [`run_cohort_calendar`] — batched soak dispatch: one heap event per
//!   (cohort, tick) instead of per tenant, so million-tenant soaks keep
//!   the calendar tiny and idle tenants cost zero between senses.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod event;
mod fault;
mod fleet;
mod guard;
mod kernel;
mod plane;
mod plant;
mod profiler;
mod soak;

pub use baseline::Baseline;
pub use event::{EpochEvent, EpochLog, EpochSummary, BURST_BINS};
pub use fault::{
    ActiveFaults, Campaign, ChannelFilter, FaultClass, FaultInjector, FaultKind, FaultPlan,
    FaultSet, FaultWindow, SensorFault, TenantFaultWindows, CHAOS_STREAM, SOAK_FAULT_CLASSES,
    SOAK_LAG_EPOCHS, SOAK_NAN_PROBABILITY, SOAK_SPIKE_FACTOR,
};
pub use fleet::{shard_seed, FleetExecutor};
pub use guard::{
    ChaosSpec, GuardPolicy, GuardSet, ADAPTIVE_CONFIDENCE_FLOOR, CAMPAIGN_BACKOFF_DOUBLINGS,
    CAMPAIGN_VOTE_WINDOW,
};
pub use kernel::{EventPlane, PlaneEvent};
pub use plane::{ControlPlane, ControlPlaneBuilder, Decider, DEFAULT_PERIOD_US};
pub use plant::{ChannelId, Plant, Sensed};
pub use profiler::{ProfileSchedule, Profiler, SampleMode};
pub use soak::{cohort_epochs, run_cohort_calendar};
