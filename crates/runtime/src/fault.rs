//! Deterministic fault injection: the chaos half of the resilience plane.
//!
//! A [`FaultPlan`] declares *where* faults happen (per-channel,
//! per-epoch-window, optionally periodic and probabilistic); a
//! [`FaultInjector`] evaluates the plan as a **pure function** of
//! `(seed, plan, channel, epoch)` — no mutable RNG state — so a chaos
//! run is byte-identical at any worker-thread count and replayable from
//! the `(seed, FaultPlan)` pair alone. The injector seed is derived from
//! the same [`shard_seed`](crate::shard_seed) material the fleet
//! executor uses, keeping fleet chaos sweeps deterministic end to end.
//!
//! The control plane consumes the injector inside
//! [`ControlPlane::decide`](crate::ControlPlane::decide) when chaos has
//! been armed via [`ControlPlane::enable_chaos`](crate::ControlPlane::enable_chaos);
//! the matching defenses live in [`GuardPolicy`](crate::GuardPolicy).

use std::fmt;

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The sensor returns no reading this epoch.
    SensorDropout,
    /// The sensor repeats the last reading it delivered instead of a
    /// fresh one (a frozen metrics pipeline).
    SensorStale,
    /// The sensor returns `NaN` (a torn read, a failed RPC decoded as
    /// garbage).
    SensorNan,
    /// The sensor returns the true reading multiplied by `factor` (a
    /// unit mix-up or counter glitch).
    SensorSpike {
        /// Multiplier applied to the true reading.
        factor: f64,
    },
    /// The decided setting reaches the plant `epochs` epochs late; until
    /// then the previously-applied setting stays in force.
    ActuatorLag {
        /// Actuation delay, in epochs.
        epochs: u64,
    },
    /// The actuator cannot move past `frac` of the controller's bounds
    /// range: the applied setting is capped at `lo + frac·(hi − lo)`.
    ActuatorSaturate {
        /// Fraction of the controller's bound range the actuator can
        /// reach, in `[0, 1]`.
        frac: f64,
    },
    /// The goal target flaps to `base × (1 − frac)` while the window is
    /// active and back to `base` outside it.
    GoalFlap {
        /// Relative tightening of the target while flapped.
        frac: f64,
    },
    /// Full plant restart: the configuration reverts to the controller's
    /// initial setting, accumulated controller and guard state is
    /// discarded, and the guard raises a re-profiling request.
    PlantRestart,
}

/// Which channels a [`FaultWindow`] applies to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ChannelFilter {
    /// Every channel of the plane.
    #[default]
    All,
    /// Only the channel with this name.
    Named(String),
}

impl ChannelFilter {
    fn matches(&self, channel: &str) -> bool {
        match self {
            ChannelFilter::All => true,
            ChannelFilter::Named(n) => n == channel,
        }
    }
}

/// One fault, active over a per-channel epoch window.
///
/// The window covers epochs `start..end`; with a non-zero `period` it is
/// only active for the first `active` epochs of each period (a repeating
/// burst — e.g. 10 dropped readings every 150 epochs), and `probability`
/// gates each epoch independently via the injector's deterministic roll.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Which channels the fault applies to.
    pub filter: ChannelFilter,
    /// First epoch (per-channel epoch counter) the window covers.
    pub start: u64,
    /// End of the window, exclusive (`u64::MAX` = until the run ends).
    pub end: u64,
    /// Burst period in epochs; `0` means continuously active.
    pub period: u64,
    /// Epochs active at the start of each period (ignored when
    /// `period == 0`).
    pub active: u64,
    /// Per-epoch activation probability in `[0, 1]`.
    pub probability: f64,
    /// Cross-channel phase stagger in epochs: channel `c` (plane index)
    /// sees the window shifted `c × stagger` epochs later, so a burst
    /// rolls across a multi-channel plane in declaration order instead
    /// of striking every channel at once (`0` = simultaneous).
    pub stagger: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// A continuous, always-on window over `start..end` for all channels.
    pub fn new(kind: FaultKind, start: u64, end: u64) -> Self {
        FaultWindow {
            filter: ChannelFilter::All,
            start,
            end,
            period: 0,
            active: 0,
            probability: 1.0,
            stagger: 0,
            kind,
        }
    }

    /// Restricts the window to one named channel.
    #[must_use]
    pub fn on_channel(mut self, name: impl Into<String>) -> Self {
        self.filter = ChannelFilter::Named(name.into());
        self
    }

    /// Makes the window a repeating burst: active for the first `active`
    /// epochs of every `period` epochs after `start`.
    #[must_use]
    pub fn periodic(mut self, period: u64, active: u64) -> Self {
        self.period = period;
        self.active = active;
        self
    }

    /// Gates each active epoch on a deterministic roll below `p`.
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Staggers the window across channels: channel `c` sees it shifted
    /// `c × epochs` later (see the [`FaultWindow::stagger`] field docs).
    #[must_use]
    pub fn staggered(mut self, epochs: u64) -> Self {
        self.stagger = epochs;
        self
    }

    /// The effective `(start, end)` for one channel: `stagger` shifts
    /// both edges by `channel × stagger` (an unbounded end stays
    /// unbounded). Pure, so the staggered schedule is as replayable as
    /// the unstaggered one.
    fn range_for(&self, channel: u32) -> (u64, u64) {
        if self.stagger == 0 {
            return (self.start, self.end);
        }
        let delta = (channel as u64).saturating_mul(self.stagger);
        let end = if self.end == u64::MAX {
            u64::MAX
        } else {
            self.end.saturating_add(delta)
        };
        (self.start.saturating_add(delta), end)
    }

    fn covers_epoch(&self, channel: u32, epoch: u64) -> bool {
        let (start, end) = self.range_for(channel);
        if epoch < start || epoch >= end {
            return false;
        }
        if self.period == 0 {
            return true;
        }
        (epoch - start) % self.period < self.active
    }

    /// The first maximal active pulse `[on, off)` of this window, on
    /// `channel`'s (possibly staggered) epoch axis, whose end lies
    /// strictly after `epoch` — or `None` when the window never
    /// activates again. `off == u64::MAX` marks a pulse that outlives
    /// any run. The event kernel walks pulses with this to schedule
    /// window-edge events instead of re-testing [`covers_epoch`] every
    /// epoch: a rising edge at `on` activates the window, a falling edge
    /// at `off` deactivates it and asks for the next pulse.
    ///
    /// Invariants relied on by the kernel (and asserted by tests):
    /// `on < off`, `off > epoch`, consecutive pulses never abut
    /// (`next.on > prev.off` for periodic windows with
    /// `active < period`; windows with `active >= period` are a single
    /// continuous pulse).
    pub(crate) fn pulse_after(&self, channel: u32, epoch: u64) -> Option<(u64, u64)> {
        let (start, end) = self.range_for(channel);
        if epoch >= end {
            return None;
        }
        if self.period == 0 || self.active >= self.period {
            // Continuously active over the whole window.
            return (start < end).then_some((start, end));
        }
        if self.active == 0 {
            return None;
        }
        let k = if epoch <= start {
            0
        } else {
            (epoch - start) / self.period
        };
        // Pulse k covers `start + k·period .. + active`; if `epoch` sits
        // past its end, pulse k+1 is the first candidate.
        for k in [k, k + 1] {
            let on = start.checked_add(k.checked_mul(self.period)?)?;
            if on >= end {
                return None;
            }
            let off = on.saturating_add(self.active).min(end);
            if off > epoch {
                return Some((on, off));
            }
        }
        None
    }
}

/// A declarative list of [`FaultWindow`]s — everything the injector
/// needs besides its seed, which makes `(seed, FaultPlan)` a complete,
/// replayable description of a chaos run.
///
/// # Example
///
/// ```
/// use smartconf_runtime::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
///
/// // Drop 10 consecutive sensor readings every 150 epochs, and corrupt
/// // 2% of the rest to NaN.
/// let plan = FaultPlan::new()
///     .window(FaultWindow::new(FaultKind::SensorDropout, 40, u64::MAX).periodic(150, 10))
///     .window(FaultWindow::new(FaultKind::SensorNan, 40, u64::MAX).with_probability(0.02));
/// assert_eq!(plan.windows().len(), 2);
///
/// // The injector is a pure function of (seed, plan, channel, epoch):
/// let a = FaultInjector::new(7, plan.clone());
/// let b = FaultInjector::new(7, plan);
/// assert_eq!(a.at("heap", 0, 45), b.at("heap", 0, 45));
/// assert!(a.at("heap", 0, 45).sensor.is_some()); // inside the burst
/// assert!(a.at("heap", 0, 30).is_clean()); // before any window starts
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a window (builder style).
    #[must_use]
    pub fn window(mut self, w: FaultWindow) -> Self {
        self.windows.push(w);
        self
    }

    /// The declared windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the plan declares no faults.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Appends every window of `other` after this plan's own — the
    /// composition primitive behind compound-fault [`Campaign`]s. Window
    /// indices (and therefore the injector's per-window rolls) follow
    /// concatenation order, so `a.merge(b)` and `b.merge(a)` are
    /// distinct, replayable plans.
    #[must_use]
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.windows.extend(other.windows);
        self
    }
}

/// The named fault classes of the chaos sweep — one per failure mode the
/// resilience guards defend against. [`FaultClass::standard_plan`] maps
/// each class to a canonical [`FaultPlan`] so every scenario's chaos run
/// is comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Periodic bursts of missing sensor readings.
    SensorDropout,
    /// Periodic bursts of frozen (exactly repeated) sensor readings.
    StaleRepeat,
    /// Background NaN readings plus periodic multiplicative spikes.
    Corruption,
    /// Periodic windows where decisions reach the plant epochs late.
    ActuatorLag,
    /// Periodic windows where the actuator cannot move past a fraction
    /// of its range.
    ActuatorSaturation,
    /// The goal target flapping down and back.
    GoalFlap,
    /// Periodic full plant restarts.
    PlantRestart,
}

impl FaultClass {
    /// Every fault class, in sweep order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::SensorDropout,
        FaultClass::StaleRepeat,
        FaultClass::Corruption,
        FaultClass::ActuatorLag,
        FaultClass::ActuatorSaturation,
        FaultClass::GoalFlap,
        FaultClass::PlantRestart,
    ];

    /// Stable display label (used in policy names and reports).
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::SensorDropout => "SensorDropout",
            FaultClass::StaleRepeat => "StaleRepeat",
            FaultClass::Corruption => "Corruption",
            FaultClass::ActuatorLag => "ActuatorLag",
            FaultClass::ActuatorSaturation => "ActuatorSaturation",
            FaultClass::GoalFlap => "GoalFlap",
            FaultClass::PlantRestart => "PlantRestart",
        }
    }

    /// The canonical plan for this class: a short clean warm-up, then
    /// repeating bursts. The warm-up and periods are sized so scenarios
    /// with tens of epochs (HD4995 runs ~18 control epochs) still see at
    /// least one burst of every class, while scenarios with tens of
    /// thousands see many.
    pub fn standard_plan(&self) -> FaultPlan {
        const WARMUP: u64 = 6;
        let plan = FaultPlan::new();
        match self {
            FaultClass::SensorDropout => plan.window(
                FaultWindow::new(FaultKind::SensorDropout, WARMUP, u64::MAX).periodic(120, 8),
            ),
            FaultClass::StaleRepeat => plan.window(
                FaultWindow::new(FaultKind::SensorStale, WARMUP, u64::MAX).periodic(120, 14),
            ),
            FaultClass::Corruption => plan
                .window(
                    FaultWindow::new(FaultKind::SensorNan, WARMUP, u64::MAX).with_probability(0.02),
                )
                .window(
                    FaultWindow::new(FaultKind::SensorSpike { factor: 25.0 }, WARMUP, u64::MAX)
                        .periodic(90, 3),
                ),
            FaultClass::ActuatorLag => plan.window(
                FaultWindow::new(FaultKind::ActuatorLag { epochs: 4 }, WARMUP, u64::MAX)
                    .periodic(160, 24),
            ),
            FaultClass::ActuatorSaturation => plan.window(
                FaultWindow::new(FaultKind::ActuatorSaturate { frac: 0.10 }, WARMUP, u64::MAX)
                    .periodic(150, 20),
            ),
            FaultClass::GoalFlap => plan.window(
                FaultWindow::new(FaultKind::GoalFlap { frac: 0.15 }, 2 * WARMUP, u64::MAX)
                    .periodic(140, 60),
            ),
            FaultClass::PlantRestart => plan.window(
                FaultWindow::new(FaultKind::PlantRestart, 2 * WARMUP, u64::MAX).periodic(300, 1),
            ),
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A named compound-fault campaign: several [`FaultClass`]es striking
/// one run concurrently, with correlated timing — the failure shapes
/// real deployments see (a restart *while* sensors are corrupted,
/// actuator lag *during* a goal flap) that single-class chaos sweeps
/// never exercise. Like the classes, each campaign maps to a canonical
/// [`FaultPlan`] ([`Campaign::plan`]) evaluated by the same stateless
/// per-`(seed, window, channel, epoch)` injector hash, so campaign
/// fleets stay byte-identical at any worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Campaign {
    /// Periodic plant restarts landing on top of the Corruption class's
    /// background NaN readings and multiplicative spikes: the controller
    /// must relearn (or re-profile) from a sensor it cannot fully trust.
    RestartUnderCorruption,
    /// Actuator-lag bursts aligned with the opening epochs of each
    /// goal-flap window: every retarget happens exactly while decisions
    /// reach the plant late.
    LagDuringGoalFlap,
    /// Sensor-dropout bursts rolling across the plane's channels in
    /// declaration order (4-epoch stagger), over a background of rare
    /// NaN corruption — a metrics pipeline failing shard by shard.
    CascadingDropout,
    /// Every fault class at once: all seven canonical plans merged into
    /// one, overlapping freely. The kitchen-sink worst case the guard
    /// ladder must survive without a hard-goal violation.
    BurstEverything,
}

impl Campaign {
    /// Every campaign, in sweep order.
    pub const ALL: [Campaign; 4] = [
        Campaign::RestartUnderCorruption,
        Campaign::LagDuringGoalFlap,
        Campaign::CascadingDropout,
        Campaign::BurstEverything,
    ];

    /// Stable kebab-case label (used in policy names and reports).
    pub fn label(&self) -> &'static str {
        match self {
            Campaign::RestartUnderCorruption => "restart-under-corruption",
            Campaign::LagDuringGoalFlap => "lag-during-goal-flap",
            Campaign::CascadingDropout => "cascading-dropout",
            Campaign::BurstEverything => "burst-everything",
        }
    }

    /// The campaign with the given [`Campaign::label`], if any.
    pub fn from_label(label: &str) -> Option<Campaign> {
        Campaign::ALL.into_iter().find(|c| c.label() == label)
    }

    /// The canonical compound plan for this campaign. Warm-ups and
    /// periods follow the single-class plans ([`FaultClass::standard_plan`])
    /// so short scenarios still see at least one compound burst.
    pub fn plan(&self) -> FaultPlan {
        const WARMUP: u64 = 6;
        match self {
            Campaign::RestartUnderCorruption => FaultClass::Corruption
                .standard_plan()
                .merge(FaultClass::PlantRestart.standard_plan()),
            Campaign::LagDuringGoalFlap => FaultPlan::new()
                .window(
                    FaultWindow::new(FaultKind::GoalFlap { frac: 0.15 }, 2 * WARMUP, u64::MAX)
                        .periodic(140, 60),
                )
                .window(
                    // Same period and phase as the flap: the lag burst is
                    // the first 24 epochs of every 60-epoch flap window.
                    FaultWindow::new(FaultKind::ActuatorLag { epochs: 4 }, 2 * WARMUP, u64::MAX)
                        .periodic(140, 24),
                ),
            Campaign::CascadingDropout => FaultPlan::new()
                .window(
                    FaultWindow::new(FaultKind::SensorDropout, WARMUP, u64::MAX)
                        .periodic(120, 8)
                        .staggered(4),
                )
                .window(
                    FaultWindow::new(FaultKind::SensorNan, WARMUP, u64::MAX).with_probability(0.01),
                ),
            Campaign::BurstEverything => FaultClass::ALL
                .into_iter()
                .fold(FaultPlan::new(), |plan, class| {
                    plan.merge(class.standard_plan())
                }),
        }
    }
}

impl fmt::Display for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The fault classes the soak's fault-plane arms exercise, in arm order.
/// The other three classes (StaleRepeat, ActuatorSaturation, GoalFlap)
/// act on control-plane state the distilled slab law does not carry, so
/// they stay chaos-sweep-only.
pub const SOAK_FAULT_CLASSES: [FaultClass; 4] = [
    FaultClass::SensorDropout,
    FaultClass::Corruption,
    FaultClass::ActuatorLag,
    FaultClass::PlantRestart,
];

/// Background NaN probability of the soak Corruption arm (matches the
/// [`FaultClass::Corruption`] standard plan).
pub const SOAK_NAN_PROBABILITY: f64 = 0.02;
/// Spike multiplier of the soak Corruption arm.
pub const SOAK_SPIKE_FACTOR: f64 = 25.0;
/// Actuation delay of the soak ActuatorLag arm, epochs. Soak cohorts
/// run 24–96 epochs total, so the chaos sweep's 4-epoch lag is scaled
/// down to keep bursts shorter than a burst period.
pub const SOAK_LAG_EPOCHS: u64 = 2;

/// Tenant-keyed stateless fault windows: the soak-scale analogue of a
/// [`FaultPlan`] evaluated by [`FaultInjector`].
///
/// Every tenant of a soak cohort sees repeating fault bursts whose phase
/// is a pure SplitMix64 hash of `(seed, tenant)` — the same
/// stateless-roll scheme [`FaultInjector`] uses per
/// `(seed, window, channel, epoch)` — so bursts roll across the tenant
/// population instead of striking every tenant at once, and activation
/// is a pure function of `(seed, tenant, epoch)`: byte-identical at any
/// worker-thread count and replayable from the `(class, seed, epochs)`
/// triple alone.
///
/// Burst geometry is sized from the cohort's total epoch budget
/// ([`TenantFaultWindows::sized_for`]): roughly four bursts per run,
/// each a sixteenth of the run long, after a short clean warm-up —
/// the same shape [`FaultClass::standard_plan`] gives scenarios with
/// hundreds of epochs, compressed into a 24–96-epoch soak cohort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantFaultWindows {
    seed: u64,
    class: FaultClass,
    /// Burst period, epochs.
    pub period: u64,
    /// Active epochs at the head of each (per-tenant phased) period.
    pub active: u64,
    /// Clean warm-up epochs before any tenant's first burst.
    pub warmup: u64,
}

impl TenantFaultWindows {
    /// Windows for one soak arm, sized for a cohort that runs `epochs`
    /// sense epochs total.
    ///
    /// # Panics
    ///
    /// Panics when `class` is not one of [`SOAK_FAULT_CLASSES`].
    pub fn sized_for(class: FaultClass, seed: u64, epochs: u64) -> TenantFaultWindows {
        assert!(
            SOAK_FAULT_CLASSES.contains(&class),
            "{class} is not a soak fault arm"
        );
        let period = (epochs / 4).max(6);
        let active = if class == FaultClass::PlantRestart {
            1
        } else {
            (epochs / 16).max(2).min(period - 1)
        };
        TenantFaultWindows {
            seed,
            class,
            period,
            active,
            warmup: (epochs / 12).max(2),
        }
    }

    /// The fault class these windows inject.
    pub fn class(&self) -> FaultClass {
        self.class
    }

    /// The tenant's burst phase in `[0, period)`: a pure hash of
    /// `(seed, tenant)`, so each tenant's bursts start at
    /// `warmup + phase, warmup + phase + period, …`.
    pub fn phase(&self, tenant: u64) -> u64 {
        crate::shard_seed(self.seed, tenant) % self.period
    }

    /// Uniform roll in `[0, 1)` for `(tenant, epoch)` — the same
    /// SplitMix64 finalizer as [`FaultInjector`]'s per-window roll.
    fn roll(&self, tenant: u64, epoch: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(tenant.wrapping_mul(0xE703_7ED1_A0B4_28DB))
            .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether `epoch` falls inside one of the tenant's bursts.
    fn in_burst(&self, tenant: u64, epoch: u64) -> bool {
        let start = self.warmup + self.phase(tenant);
        epoch >= start && (epoch - start) % self.period < self.active
    }

    /// The faults active for `tenant` at `epoch` — pure, stateless.
    pub fn at(&self, tenant: u64, epoch: u64) -> ActiveFaults {
        let mut out = ActiveFaults::default();
        match self.class {
            FaultClass::SensorDropout => {
                if self.in_burst(tenant, epoch) {
                    out.sensor = Some(SensorFault::Drop);
                    out.set.insert(FaultSet::DROPOUT);
                }
            }
            FaultClass::Corruption => {
                // NaN wins over the spike, matching the injector's
                // declaration-order priority for the standard plan.
                if epoch >= self.warmup && self.roll(tenant, epoch) < SOAK_NAN_PROBABILITY {
                    out.sensor = Some(SensorFault::Nan);
                    out.set.insert(FaultSet::NAN);
                } else if self.in_burst(tenant, epoch) {
                    out.sensor = Some(SensorFault::Scale(SOAK_SPIKE_FACTOR));
                    out.set.insert(FaultSet::SPIKE);
                }
            }
            FaultClass::ActuatorLag => {
                if self.in_burst(tenant, epoch) {
                    out.lag = Some(SOAK_LAG_EPOCHS);
                    out.set.insert(FaultSet::LAG);
                }
            }
            FaultClass::PlantRestart => {
                if self.in_burst(tenant, epoch) {
                    out.restart = true;
                    out.set.insert(FaultSet::RESTART);
                }
            }
            _ => unreachable!("sized_for rejects non-soak classes"),
        }
        out
    }

    /// The tenant's schedule as an explicit [`FaultPlan`], for running a
    /// *real* control plane under the same windows (the soak's
    /// cross-check arm). Burst edges are identical to
    /// [`TenantFaultWindows::at`]; the Corruption arm's background-NaN
    /// roll goes through [`FaultInjector`]'s per-window hash instead of
    /// this struct's, so individual NaN epochs differ while the rate and
    /// windows match.
    pub fn plan_for(&self, tenant: u64) -> FaultPlan {
        let start = self.warmup + self.phase(tenant);
        let plan = FaultPlan::new();
        match self.class {
            FaultClass::SensorDropout => plan.window(
                FaultWindow::new(FaultKind::SensorDropout, start, u64::MAX)
                    .periodic(self.period, self.active),
            ),
            FaultClass::Corruption => plan
                .window(
                    FaultWindow::new(FaultKind::SensorNan, self.warmup, u64::MAX)
                        .with_probability(SOAK_NAN_PROBABILITY),
                )
                .window(
                    FaultWindow::new(
                        FaultKind::SensorSpike {
                            factor: SOAK_SPIKE_FACTOR,
                        },
                        start,
                        u64::MAX,
                    )
                    .periodic(self.period, self.active),
                ),
            FaultClass::ActuatorLag => plan.window(
                FaultWindow::new(
                    FaultKind::ActuatorLag {
                        epochs: SOAK_LAG_EPOCHS,
                    },
                    start,
                    u64::MAX,
                )
                .periodic(self.period, self.active),
            ),
            FaultClass::PlantRestart => plan.window(
                FaultWindow::new(FaultKind::PlantRestart, start, u64::MAX)
                    .periodic(self.period, self.active),
            ),
            _ => unreachable!("sized_for rejects non-soak classes"),
        }
    }
}

/// Bit set of fault classes injected on one epoch (recorded on
/// [`EpochEvent`](crate::EpochEvent)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSet(u16);

impl FaultSet {
    /// Sensor returned nothing.
    pub const DROPOUT: FaultSet = FaultSet(1 << 0);
    /// Sensor repeated its previous reading.
    pub const STALE: FaultSet = FaultSet(1 << 1);
    /// Sensor returned NaN.
    pub const NAN: FaultSet = FaultSet(1 << 2);
    /// Sensor reading multiplied by a spike factor.
    pub const SPIKE: FaultSet = FaultSet(1 << 3);
    /// Decision deferred by actuator lag.
    pub const LAG: FaultSet = FaultSet(1 << 4);
    /// Applied setting capped by actuator saturation.
    pub const SATURATE: FaultSet = FaultSet(1 << 5);
    /// Goal target flapped.
    pub const GOAL_FLAP: FaultSet = FaultSet(1 << 6);
    /// Plant restarted.
    pub const RESTART: FaultSet = FaultSet(1 << 7);

    /// Display labels for the eight fault bits, index-aligned with the
    /// bit positions (index 0 = [`FaultSet::DROPOUT`] … index 7 =
    /// [`FaultSet::RESTART`]). The per-class MTTR accumulators in
    /// [`EpochSummary`](crate::EpochSummary) use the same indexing.
    pub const BIT_LABELS: [&'static str; 8] = [
        "dropout",
        "stale",
        "nan",
        "spike",
        "lag",
        "saturate",
        "goal_flap",
        "restart",
    ];

    /// The raw bits (bit `i` is the class labelled
    /// [`FaultSet::BIT_LABELS`]`[i]`).
    pub fn bits(&self) -> u16 {
        self.0
    }

    /// Adds the bits of `other`.
    pub fn insert(&mut self, other: FaultSet) {
        self.0 |= other.0;
    }

    /// Whether every bit of `other` is set.
    pub fn contains(&self, other: FaultSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no fault was injected.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// What a sensor fault turned the reading into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// No reading this epoch.
    Drop,
    /// Repeat the last delivered reading.
    Stale,
    /// Deliver `NaN` instead of the true reading.
    Nan,
    /// Deliver the true reading multiplied by this factor.
    Scale(f64),
}

/// Everything the injector fires for one `(channel, epoch)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActiveFaults {
    /// Sensor-side fault, if any (at most one wins per epoch: dropout
    /// beats stale beats corruption).
    pub sensor: Option<SensorFault>,
    /// Actuation delay in epochs, if a lag window is active.
    pub lag: Option<u64>,
    /// Saturation fraction of the bound range, if active.
    pub saturate: Option<f64>,
    /// Relative goal tightening, if a flap window is active.
    pub goal_flap: Option<f64>,
    /// Whether the plant restarts this epoch.
    pub restart: bool,
    /// The injected classes as recorded on the epoch event.
    pub set: FaultSet,
}

impl ActiveFaults {
    /// Whether nothing fires this epoch.
    pub fn is_clean(&self) -> bool {
        self.set.is_empty()
    }
}

/// Stream index for deriving a fault-plane seed from a shard's base
/// seed via [`shard_seed`](crate::shard_seed). Scenario crates use
/// `shard_seed(seed, CHAOS_STREAM)` so the injector's rolls stay
/// decorrelated from the plant's workload RNG, which consumes the base
/// seed directly.
pub const CHAOS_STREAM: u64 = 0xC4A0;

/// Evaluates a [`FaultPlan`] deterministically.
///
/// Activation rolls are a SplitMix64-style hash of
/// `(seed, window index, channel index, epoch)`, so the injector carries
/// no mutable state: two injectors built from the same `(seed, plan)`
/// agree everywhere, regardless of call order or thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
}

impl FaultInjector {
    /// Builds an injector from a seed (derive it from the shard seed via
    /// [`shard_seed`](crate::shard_seed)) and a plan.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        FaultInjector { seed, plan }
    }

    /// The plan under evaluation.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The injector seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform roll in `[0, 1)` for `(window, channel, epoch)` — pure.
    fn roll(&self, window: usize, channel: u32, epoch: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add((window as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((channel as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB))
            .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The window indices whose [`ChannelFilter`] matches `channel_name`.
    ///
    /// The control plane resolves this once per channel when chaos is
    /// armed and then evaluates epochs via
    /// [`FaultInjector::at_windows`], keeping string comparison out of
    /// the per-epoch decide path.
    pub fn windows_for(&self, channel_name: &str) -> Vec<usize> {
        self.plan
            .windows
            .iter()
            .enumerate()
            .filter(|(_, w)| w.filter.matches(channel_name))
            .map(|(wi, _)| wi)
            .collect()
    }

    /// The faults active for `channel` (name and plane index) at its
    /// per-channel `epoch`. Pure: the same arguments always produce the
    /// same answer.
    pub fn at(&self, channel_name: &str, channel: u32, epoch: u64) -> ActiveFaults {
        let mut out = ActiveFaults::default();
        for (wi, w) in self.plan.windows.iter().enumerate() {
            if !w.filter.matches(channel_name) || !w.covers_epoch(channel, epoch) {
                continue;
            }
            self.fire(wi, w, channel, epoch, &mut out);
        }
        out
    }

    /// Like [`FaultInjector::at`], but over a pre-resolved window index
    /// list (see [`FaultInjector::windows_for`]); equivalent to `at`
    /// whenever `windows` holds exactly the indices matching the
    /// channel's name.
    pub fn at_windows(&self, windows: &[usize], channel: u32, epoch: u64) -> ActiveFaults {
        let mut out = ActiveFaults::default();
        for &wi in windows {
            let w = &self.plan.windows[wi];
            if !w.covers_epoch(channel, epoch) {
                continue;
            }
            self.fire(wi, w, channel, epoch, &mut out);
        }
        out
    }

    /// Evaluates one already-matched window's probability gate and fault.
    fn fire(&self, wi: usize, w: &FaultWindow, channel: u32, epoch: u64, out: &mut ActiveFaults) {
        if w.probability < 1.0 && self.roll(wi, channel, epoch) >= w.probability {
            return;
        }
        match w.kind {
            FaultKind::SensorDropout => {
                out.sensor = Some(SensorFault::Drop);
                out.set.insert(FaultSet::DROPOUT);
            }
            FaultKind::SensorStale => {
                if !matches!(out.sensor, Some(SensorFault::Drop)) {
                    out.sensor = Some(SensorFault::Stale);
                }
                out.set.insert(FaultSet::STALE);
            }
            FaultKind::SensorNan => {
                if out.sensor.is_none() {
                    out.sensor = Some(SensorFault::Nan);
                }
                out.set.insert(FaultSet::NAN);
            }
            FaultKind::SensorSpike { factor } => {
                if out.sensor.is_none() {
                    out.sensor = Some(SensorFault::Scale(factor));
                }
                out.set.insert(FaultSet::SPIKE);
            }
            FaultKind::ActuatorLag { epochs } => {
                out.lag = Some(epochs.max(1));
                out.set.insert(FaultSet::LAG);
            }
            FaultKind::ActuatorSaturate { frac } => {
                out.saturate = Some(frac.clamp(0.0, 1.0));
                out.set.insert(FaultSet::SATURATE);
            }
            FaultKind::GoalFlap { frac } => {
                out.goal_flap = Some(frac.clamp(0.0, 0.95));
                out.set.insert(FaultSet::GOAL_FLAP);
            }
            FaultKind::PlantRestart => {
                out.restart = true;
                out.set.insert(FaultSet::RESTART);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_expected_epochs() {
        let w = FaultWindow::new(FaultKind::SensorDropout, 40, 400).periodic(100, 10);
        assert!(!w.covers_epoch(0, 39));
        assert!(w.covers_epoch(0, 40));
        assert!(w.covers_epoch(0, 49));
        assert!(!w.covers_epoch(0, 50));
        assert!(w.covers_epoch(0, 140));
        assert!(!w.covers_epoch(0, 400));
        let cont = FaultWindow::new(FaultKind::SensorNan, 5, u64::MAX);
        assert!(cont.covers_epoch(0, 5) && cont.covers_epoch(0, 1_000_000));
    }

    #[test]
    fn stagger_shifts_per_channel() {
        let w = FaultWindow::new(FaultKind::SensorDropout, 40, 400)
            .periodic(100, 10)
            .staggered(4);
        // Channel 0 is unshifted; channel 2 sees everything 8 later.
        for e in 0..500u64 {
            assert_eq!(
                w.covers_epoch(2, e + 8),
                w.covers_epoch(0, e),
                "epoch {e} channel-2 shift"
            );
        }
        assert!(!w.covers_epoch(2, 40) && w.covers_epoch(2, 48));
        // An unbounded end stays unbounded under the shift.
        let open = FaultWindow::new(FaultKind::SensorNan, 5, u64::MAX).staggered(7);
        assert!(open.covers_epoch(3, 1_000_000));
        assert_eq!(open.pulse_after(3, 0), Some((26, u64::MAX)));
    }

    #[test]
    fn channel_filter_restricts() {
        let plan = FaultPlan::new()
            .window(FaultWindow::new(FaultKind::PlantRestart, 0, 10).on_channel("a"));
        let inj = FaultInjector::new(1, plan);
        assert!(inj.at("a", 0, 5).restart);
        assert!(inj.at("b", 1, 5).is_clean());
    }

    #[test]
    fn injector_is_pure_and_seed_sensitive() {
        let plan = FaultPlan::new()
            .window(FaultWindow::new(FaultKind::SensorNan, 0, 10_000).with_probability(0.5));
        let a = FaultInjector::new(42, plan.clone());
        let b = FaultInjector::new(42, plan.clone());
        let c = FaultInjector::new(43, plan);
        let hits = |inj: &FaultInjector| -> Vec<bool> {
            (0..10_000).map(|e| !inj.at("x", 0, e).is_clean()).collect()
        };
        assert_eq!(hits(&a), hits(&b));
        assert_ne!(hits(&a), hits(&c));
        // The 0.5 gate actually gates: roughly half the epochs fire.
        let count = hits(&a).iter().filter(|&&h| h).count();
        assert!((4_000..6_000).contains(&count), "count {count}");
    }

    #[test]
    fn at_windows_matches_at_for_resolved_channels() {
        // Mixed plan: one all-channel window, one channel-scoped window,
        // one probabilistic window — the pre-resolved path must agree
        // with the name-matched path everywhere.
        let plan = FaultPlan::new()
            .window(FaultWindow::new(FaultKind::SensorDropout, 3, 50).periodic(10, 2))
            .window(FaultWindow::new(FaultKind::PlantRestart, 5, 40).on_channel("a"))
            .window(FaultWindow::new(FaultKind::SensorNan, 0, 60).with_probability(0.3));
        let inj = FaultInjector::new(11, plan);
        for (idx, name) in ["a", "b"].iter().enumerate() {
            let windows = inj.windows_for(name);
            for epoch in 0..80 {
                assert_eq!(
                    inj.at(name, idx as u32, epoch),
                    inj.at_windows(&windows, idx as u32, epoch),
                    "channel {name} epoch {epoch}"
                );
            }
        }
    }

    #[test]
    fn sensor_fault_priority() {
        let plan = FaultPlan::new()
            .window(FaultWindow::new(FaultKind::SensorNan, 0, 10))
            .window(FaultWindow::new(FaultKind::SensorDropout, 0, 10));
        let inj = FaultInjector::new(1, plan);
        let f = inj.at("x", 0, 3);
        assert_eq!(f.sensor, Some(SensorFault::Drop));
        assert!(f.set.contains(FaultSet::DROPOUT));
        assert!(f.set.contains(FaultSet::NAN));
    }

    #[test]
    fn every_class_has_a_plan_and_label() {
        for class in FaultClass::ALL {
            let plan = class.standard_plan();
            assert!(!plan.is_empty(), "{class} plan empty");
            assert!(!class.label().is_empty());
            // Every plan fires somewhere in the first 600 epochs.
            let inj = FaultInjector::new(9, plan);
            let fired = (0..600).any(|e| !inj.at("x", 0, e).is_clean());
            assert!(fired, "{class} never fires in 600 epochs");
        }
    }

    #[test]
    fn pulse_walk_agrees_with_covers_epoch() {
        // Walking pulses via pulse_after must reproduce covers_epoch
        // exactly: every epoch inside a reported pulse is covered, every
        // epoch between pulses is not.
        let windows = [
            FaultWindow::new(FaultKind::SensorDropout, 40, 400).periodic(100, 10),
            FaultWindow::new(FaultKind::SensorNan, 5, u64::MAX),
            FaultWindow::new(FaultKind::SensorStale, 6, u64::MAX).periodic(120, 14),
            FaultWindow::new(FaultKind::PlantRestart, 12, u64::MAX).periodic(300, 1),
            FaultWindow::new(FaultKind::SensorSpike { factor: 2.0 }, 0, 37).periodic(7, 7),
            FaultWindow::new(FaultKind::ActuatorLag { epochs: 2 }, 3, 50).periodic(8, 0),
        ];
        // Channel 0 is the unstaggered axis; channel 3 exercises the
        // staggered one (every window re-checked with a 5-epoch stagger).
        for channel in [0u32, 3] {
            for w in &windows {
                let w = if channel == 0 {
                    w.clone()
                } else {
                    w.clone().staggered(5)
                };
                let mut active_by_walk = vec![false; 1000];
                let mut cursor = 0u64;
                while let Some((on, off)) = w.pulse_after(channel, cursor) {
                    assert!(on < off, "empty pulse {on}..{off}");
                    assert!(off > cursor, "pulse did not advance past {cursor}");
                    for e in on..off.min(1000) {
                        active_by_walk[e as usize] = true;
                    }
                    if off >= 1000 {
                        break;
                    }
                    assert!(
                        w.pulse_after(channel, off).is_none_or(|(n, _)| n > off),
                        "pulses abut at {off}"
                    );
                    cursor = off;
                }
                for e in 0..1000u64 {
                    assert_eq!(
                        active_by_walk[e as usize],
                        w.covers_epoch(channel, e),
                        "{:?} channel {channel} epoch {e}",
                        w.kind
                    );
                }
            }
        }
    }

    #[test]
    fn fault_set_bits() {
        let mut s = FaultSet::default();
        assert!(s.is_empty());
        s.insert(FaultSet::LAG);
        s.insert(FaultSet::RESTART);
        assert!(s.contains(FaultSet::LAG));
        assert!(!s.contains(FaultSet::NAN));
        assert!(!s.is_empty());
        assert_eq!(s.bits(), (1 << 4) | (1 << 7));
        assert_eq!(FaultSet::BIT_LABELS[4], "lag");
        assert_eq!(FaultSet::BIT_LABELS[7], "restart");
    }

    #[test]
    fn plan_merge_concatenates_in_order() {
        let a = FaultPlan::new().window(FaultWindow::new(FaultKind::SensorDropout, 0, 10));
        let b = FaultPlan::new()
            .window(FaultWindow::new(FaultKind::PlantRestart, 5, 6))
            .window(FaultWindow::new(FaultKind::SensorNan, 0, 20));
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.windows().len(), 3);
        assert_eq!(merged.windows()[0], a.windows()[0]);
        assert_eq!(merged.windows()[1], b.windows()[0]);
        assert_eq!(merged.windows()[2], b.windows()[1]);
    }

    #[test]
    fn every_campaign_has_a_compound_plan_and_label() {
        for campaign in Campaign::ALL {
            let plan = campaign.plan();
            assert!(
                plan.windows().len() >= 2,
                "{campaign} is not compound ({} windows)",
                plan.windows().len()
            );
            assert_eq!(Campaign::from_label(campaign.label()), Some(campaign));
            // Every campaign fires at least two distinct fault classes
            // somewhere in the first 600 epochs.
            let inj = FaultInjector::new(9, plan);
            let mut seen = FaultSet::default();
            for e in 0..600 {
                seen.insert(inj.at("x", 0, e).set);
            }
            let classes = seen.bits().count_ones();
            assert!(classes >= 2, "{campaign} fired {classes} classes");
        }
        assert_eq!(Campaign::from_label("nope"), None);
    }

    #[test]
    fn lag_during_goal_flap_overlaps_its_classes() {
        // The campaign's point: some epoch carries BOTH the flap and the
        // lag (single-class sweeps never produce that).
        let inj = FaultInjector::new(3, Campaign::LagDuringGoalFlap.plan());
        let overlapped = (0..600).any(|e| {
            let f = inj.at("x", 0, e);
            f.goal_flap.is_some() && f.lag.is_some()
        });
        assert!(overlapped, "lag never coincided with a goal flap");
    }

    #[test]
    fn cascading_dropout_staggers_channels() {
        let inj = FaultInjector::new(5, Campaign::CascadingDropout.plan());
        let first_drop = |ch: u32| {
            (0..200u64)
                .find(|&e| {
                    inj.at("x", ch, e)
                        .sensor
                        .is_some_and(|s| matches!(s, SensorFault::Drop))
                })
                .expect("dropout burst fires")
        };
        // Plane-index order: each later channel's first dropout burst
        // starts exactly one stagger (4 epochs) after the previous one.
        assert_eq!(first_drop(1), first_drop(0) + 4);
        assert_eq!(first_drop(2), first_drop(0) + 8);
    }

    #[test]
    fn tenant_windows_are_pure_phased_and_sized() {
        for class in SOAK_FAULT_CLASSES {
            for epochs in [24u64, 48, 96] {
                let w = TenantFaultWindows::sized_for(class, 42, epochs);
                assert!(w.active < w.period, "{class} burst outlives its period");
                assert!(w.warmup >= 2);
                // Pure: two evaluations agree everywhere; a different
                // seed moves at least one tenant's phase.
                let w2 = TenantFaultWindows::sized_for(class, 42, epochs);
                let w3 = TenantFaultWindows::sized_for(class, 43, epochs);
                for t in 0..16u64 {
                    assert_eq!(w.phase(t), w2.phase(t));
                    for e in 0..epochs {
                        assert_eq!(w.at(t, e), w2.at(t, e), "{class} t{t} e{e}");
                    }
                }
                assert!(
                    (0..64).any(|t| w.phase(t) != w3.phase(t)),
                    "{class}: seed change moved no phase"
                );
                // Every tenant sees at least one burst inside the run,
                // and no tenant faults during the warm-up.
                for t in 0..16u64 {
                    assert!(
                        (0..epochs).any(|e| !w.at(t, e).is_clean()),
                        "{class} tenant {t} never faulted in {epochs} epochs"
                    );
                    for e in 0..w.warmup {
                        assert!(w.at(t, e).is_clean(), "{class} faulted in warm-up");
                    }
                }
                // Phases spread bursts across tenants.
                let phases: std::collections::BTreeSet<u64> =
                    (0..256).map(|t| w.phase(t)).collect();
                assert!(phases.len() > 1, "{class}: all tenants in phase");
            }
        }
    }

    #[test]
    fn tenant_windows_match_their_exported_plan() {
        // The cross-check arm runs real control planes under
        // plan_for(tenant); its burst edges must agree with the slab
        // arm's at(tenant, epoch) for every deterministic (non-rolled)
        // class, and for Corruption's spike window.
        for class in SOAK_FAULT_CLASSES {
            let w = TenantFaultWindows::sized_for(class, 7, 96);
            for t in [0u64, 3, 11] {
                let inj = FaultInjector::new(7, w.plan_for(t));
                for e in 0..200u64 {
                    let slab = w.at(t, e);
                    let real = inj.at("x", 0, e);
                    match class {
                        FaultClass::Corruption => {
                            // NaN epochs roll through different hashes;
                            // compare the deterministic spike windows on
                            // epochs where neither side rolled a NaN.
                            if !slab.set.contains(FaultSet::NAN)
                                && !real.set.contains(FaultSet::NAN)
                            {
                                assert_eq!(
                                    slab.set.contains(FaultSet::SPIKE),
                                    real.set.contains(FaultSet::SPIKE),
                                    "{class} t{t} e{e}"
                                );
                            }
                        }
                        _ => assert_eq!(slab, real, "{class} t{t} e{e}"),
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a soak fault arm")]
    fn tenant_windows_reject_non_soak_classes() {
        TenantFaultWindows::sized_for(FaultClass::GoalFlap, 1, 96);
    }

    #[test]
    fn burst_everything_covers_all_classes() {
        let inj = FaultInjector::new(11, Campaign::BurstEverything.plan());
        let mut seen = FaultSet::default();
        for e in 0..700 {
            seen.insert(inj.at("x", 0, e).set);
        }
        for (bit, label) in FaultSet::BIT_LABELS.iter().enumerate() {
            assert!(
                seen.bits() & (1 << bit) != 0,
                "burst-everything never fired {label}"
            );
        }
    }
}
