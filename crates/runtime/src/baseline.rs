//! The comparison baselines every scenario runs against.

/// A static-setting baseline for the SmartConf-vs-static comparison
/// (Figure 5). Having one enum — instead of per-scenario ad-hoc run
/// functions — makes the static and oracle comparison runs a single
/// code path through the control plane: a baseline resolves to a fixed
/// setting, which becomes a [`Decider::Static`](crate::Decider::Static)
/// channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Baseline {
    /// An explicit fixed setting.
    Fixed(f64),
    /// The default setting users complained about in the original issue.
    BuggyDefault,
    /// The default the developers' patch introduced.
    PatchDefault,
    /// The best constraint-satisfying static setting — the oracle found
    /// by exhaustively sweeping the scenario's candidate settings.
    Optimal,
    /// A plausible-but-poor constraint-satisfying static setting (the
    /// paper's randomly chosen static configurations).
    Nonoptimal,
}

impl Baseline {
    /// The label used in reports ("static-120", "Static-Optimal", ...).
    pub fn label(&self) -> String {
        match self {
            Baseline::Fixed(v) => format!("static-{v}"),
            Baseline::BuggyDefault => "Static-BuggyDefault".into(),
            Baseline::PatchDefault => "Static-PatchDefault".into(),
            Baseline::Optimal => "Static-Optimal".into(),
            Baseline::Nonoptimal => "Static-Nonoptimal".into(),
        }
    }

    /// The fixed setting, when the baseline carries one directly.
    /// `Optimal`/`Nonoptimal` need a sweep to resolve and return `None`.
    pub fn fixed_setting(&self) -> Option<f64> {
        match self {
            Baseline::Fixed(v) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_settings() {
        assert_eq!(Baseline::Fixed(90.0).label(), "static-90");
        assert_eq!(Baseline::Fixed(90.0).fixed_setting(), Some(90.0));
        assert_eq!(Baseline::Optimal.fixed_setting(), None);
        assert!(Baseline::BuggyDefault.label().contains("Buggy"));
    }
}
