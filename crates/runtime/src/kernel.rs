//! The event kernel: the control plane scheduled on the simkernel heap.
//!
//! [`EventPlane`] re-founds the lockstep epoch loop on
//! [`smartconf_simkernel::Simulation`]: every channel senses on its own
//! period ([`channel_with_period`](crate::ControlPlaneBuilder::channel_with_period)),
//! fault windows become scheduled edge events instead of per-epoch
//! window scans, and idle channels cost nothing between events. The
//! lockstep API ([`ControlPlane::epoch_for`]/[`ControlPlane::run`])
//! remains as a synchronous compatibility shim delivering the same
//! Sense→Actuate sequence; with uniform periods the two produce
//! byte-identical [`EpochLog`](crate::EpochLog)s (pinned by this
//! module's property tests).
//!
//! # Event taxonomy
//!
//! - [`PlaneEvent::Sense`] — read the channel's sensor, run the decide
//!   path (guard ladder included when chaos is armed), poll the restart
//!   notification, then schedule the matching `Actuate` at the same
//!   instant.
//! - [`PlaneEvent::Actuate`] — apply the decided setting to the plant,
//!   poll the shed notification, and schedule the next `Sense`.
//! - [`PlaneEvent::GoalChange`] — retarget a channel mid-run
//!   ([`EventPlane::schedule_goal_change`]), the scheduled form of
//!   [`ControlPlane::set_goal`].
//! - [`PlaneEvent::FaultWindowEdge`] — a fault window's pulse boundary:
//!   a rising edge inserts the window into the channel's active set, a
//!   falling edge removes it, and each edge schedules its successor from
//!   [`FaultWindow::pulse_after`](crate::FaultWindow). Between edges the
//!   decide path evaluates only the active set.
//!
//! # Ordering rules (what makes runs deterministic)
//!
//! The kernel inherits the calendar's total order: events fire by time,
//! ties by scheduling sequence (FIFO). On top of that the kernel
//! maintains two invariants:
//!
//! 1. **Cohort chaining.** Channels sharing a period form a *cohort* in
//!    declaration order. Within a cohort, `Actuate(k)` schedules
//!    `Sense(k+1)` at the same instant, and the last member's `Actuate`
//!    schedules the first member's `Sense` one period later. Coincident
//!    epochs therefore interleave exactly like the lockstep loop
//!    (`sense₀, apply₀, sense₁, apply₁, …`), which is what makes the
//!    uniform-period case byte-identical to [`ControlPlane::run`].
//! 2. **Edges before senses.** A fault edge for epoch boundary `b` fires
//!    at the same instant as the `Sense` performing epoch `b` but with a
//!    strictly smaller sequence number: initial edges are scheduled
//!    before initial senses, and each subsequent edge is scheduled by an
//!    edge handler that (inductively) runs before the coincident sense
//!    chain of its instant. The decide path therefore always sees the
//!    window set the lockstep per-epoch scan would have computed.
//!
//! A channel's epoch `e` senses at time `(e + 1) · period_us` — one full
//! period of warm-up before the first decision, matching the lockstep
//! shim's advance-then-sense timing.

use smartconf_simkernel::{Context, Model, SimDuration, SimTime, Simulation};

use crate::{ChannelId, ControlPlane, EpochLog, Plant};

/// The event alphabet of the control plane's kernel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlaneEvent {
    /// Sense and decide one channel's epoch.
    Sense(ChannelId),
    /// Apply a decided setting to the plant and schedule the next sense.
    Actuate {
        /// The channel being actuated.
        channel: ChannelId,
        /// The decided setting (output space).
        setting: f64,
    },
    /// Retarget a channel's goal ([`ControlPlane::set_goal`], scheduled).
    GoalChange {
        /// The channel to retarget.
        channel: ChannelId,
        /// The new goal target (finite; validated when scheduled).
        target: f64,
    },
    /// A fault window's pulse boundary on one channel's epoch axis.
    FaultWindowEdge {
        /// The channel whose active-window set toggles.
        channel: ChannelId,
        /// Index of the window in the armed fault plan.
        window: usize,
        /// `true` activates the window, `false` deactivates it.
        rising: bool,
    },
}

/// The kernel's model: the plane, the plant, and the scheduling state.
#[derive(Debug)]
struct KernelModel<P: Plant> {
    plane: ControlPlane,
    plant: P,
    /// Channels grouped by equal sensing period, declaration order
    /// preserved both across and within cohorts.
    cohorts: Vec<Vec<ChannelId>>,
    /// Channel index → (cohort index, position within the cohort).
    slot: Vec<(usize, usize)>,
    /// Channel index → sorted indices of currently-active fault windows.
    active: Vec<Vec<usize>>,
}

impl<P: Plant> KernelModel<P> {
    /// When epoch boundary `b` of `channel` takes effect on the
    /// calendar: the instant of the `Sense` performing epoch `b`.
    /// `None` on overflow (a boundary no finite run reaches).
    fn boundary_time(&self, channel: ChannelId, boundary: u64) -> Option<SimTime> {
        let p = self.plane.period_us(channel);
        let t = boundary.checked_mul(p)?.checked_add(p)?;
        Some(SimTime::from_micros(t))
    }
}

impl<P: Plant> Model for KernelModel<P> {
    type Event = PlaneEvent;

    fn handle(&mut self, event: PlaneEvent, ctx: &mut Context<'_, PlaneEvent>) {
        match event {
            PlaneEvent::Sense(ch) => {
                let sensed = self.plant.sense(ch);
                let t_us = ctx.now().as_micros();
                let setting = if self.plane.chaos_enabled() {
                    let faults = self.plane.active_faults(ch, &self.active[ch.index()]);
                    self.plane.decide_with_faults(ch, t_us, sensed, faults)
                } else {
                    self.plane.decide(ch, t_us, sensed)
                };
                if self.plane.take_plant_restart(ch) {
                    self.plant.restart(ch);
                }
                ctx.schedule_at(
                    ctx.now(),
                    PlaneEvent::Actuate {
                        channel: ch,
                        setting,
                    },
                );
            }
            PlaneEvent::Actuate { channel, setting } => {
                self.plant.apply(channel, setting);
                if self.plane.take_plant_shed(channel) {
                    self.plant.shed(channel);
                }
                let (ci, pos) = self.slot[channel.index()];
                let cohort = &self.cohorts[ci];
                if pos + 1 < cohort.len() {
                    // Chain the cohort's next channel at this instant.
                    ctx.schedule_at(ctx.now(), PlaneEvent::Sense(cohort[pos + 1]));
                } else {
                    let first = cohort[0];
                    let period = SimDuration::from_micros(self.plane.period_us(first));
                    ctx.schedule_in(period, PlaneEvent::Sense(first));
                }
            }
            PlaneEvent::GoalChange { channel, target } => {
                self.plane
                    .set_goal(channel, target)
                    .expect("goal targets are validated when scheduled");
            }
            PlaneEvent::FaultWindowEdge {
                channel,
                window,
                rising,
            } => {
                let list = &mut self.active[channel.index()];
                if rising {
                    if let Err(i) = list.binary_search(&window) {
                        list.insert(i, window);
                    }
                } else if let Ok(i) = list.binary_search(&window) {
                    list.remove(i);
                }
                // Edges fire before the coincident sense, so the
                // channel's epoch counter still reads the boundary epoch.
                let epoch = self.plane.epochs(channel);
                if let Some((on, off)) = self.plane.window_pulse_after(window, channel, epoch) {
                    // Rising: schedule this pulse's falling edge (unless
                    // it outlives any run). Falling: schedule the next
                    // pulse's rising edge.
                    let (boundary, next_rising) = if rising { (off, false) } else { (on, true) };
                    if let Some(at) = self.boundary_time(channel, boundary) {
                        ctx.schedule_at(
                            at,
                            PlaneEvent::FaultWindowEdge {
                                channel,
                                window,
                                rising: next_rising,
                            },
                        );
                    }
                }
            }
        }
    }
}

/// A [`ControlPlane`] and its [`Plant`] scheduled on the simkernel event
/// heap, with one `Sense` per channel per
/// [`period_us`](ControlPlane::period_us).
///
/// Arm chaos ([`ControlPlane::enable_chaos`]) *before* constructing the
/// `EventPlane` — fault-window edges are scheduled at construction.
///
/// # Example
///
/// ```
/// use smartconf_core::{Controller, Goal, SmartConf};
/// use smartconf_runtime::{ChannelId, ControlPlane, Decider, EventPlane, Plant, Sensed};
///
/// // Plant: metric = 2 × setting. Goal: metric == 400.
/// struct Linear { setting: f64 }
/// impl Plant for Linear {
///     fn now_us(&self) -> u64 { 0 } // the kernel owns the clock
///     fn sense(&mut self, _: ChannelId) -> Sensed { Sensed::direct(2.0 * self.setting) }
///     fn apply(&mut self, _: ChannelId, setting: f64) { self.setting = setting; }
/// }
///
/// let ctl = Controller::new(2.0, 0.0, Goal::new("m", 400.0), 0.0, (0.0, 1e6), 0.0)?;
/// let mut builder = ControlPlane::builder();
/// let chan = builder.channel_with_period(
///     "cache.size",
///     Decider::Direct(Box::new(SmartConf::new("cache.size", ctl))),
///     250_000, // sense 4× per second
/// );
/// let plane = builder.build();
/// let mut events = EventPlane::new(plane, Linear { setting: 0.0 });
/// events.run_until_us(10_000_000); // 10 simulated seconds → 40 epochs
/// assert_eq!(events.plane().log().events_for("cache.size").count(), 40);
/// assert!((2.0 * events.plant().setting - 400.0).abs() < 1.0);
/// # Ok::<(), smartconf_core::Error>(())
/// ```
#[derive(Debug)]
pub struct EventPlane<P: Plant> {
    sim: Simulation<KernelModel<P>>,
}

impl<P: Plant> EventPlane<P> {
    /// Schedules the plane over the plant: fault-window edges first
    /// (they must precede coincident senses), then each cohort's first
    /// `Sense` one period in.
    pub fn new(plane: ControlPlane, plant: P) -> Self {
        let n = plane.channel_count();
        let mut cohorts: Vec<(u64, Vec<ChannelId>)> = Vec::new();
        let mut slot = vec![(0usize, 0usize); n];
        for (i, s) in slot.iter_mut().enumerate() {
            let ch = ChannelId(i);
            let p = plane.period_us(ch);
            let ci = match cohorts.iter().position(|(cp, _)| *cp == p) {
                Some(ci) => ci,
                None => {
                    cohorts.push((p, Vec::new()));
                    cohorts.len() - 1
                }
            };
            *s = (ci, cohorts[ci].1.len());
            cohorts[ci].1.push(ch);
        }
        let cohorts: Vec<Vec<ChannelId>> = cohorts.into_iter().map(|(_, c)| c).collect();
        let model = KernelModel {
            plane,
            plant,
            cohorts: cohorts.clone(),
            slot,
            active: vec![Vec::new(); n],
        };
        // The kernel model consumes no randomness: every handler is a
        // pure function of the popped event and the model state.
        let mut sim = Simulation::new(model, 0);
        for i in 0..n {
            let ch = ChannelId(i);
            let windows = sim.model().plane.chaos_windows(ch).to_vec();
            for w in windows {
                if let Some((on, _)) = sim.model().plane.window_pulse_after(w, ch, 0) {
                    if let Some(at) = sim.model().boundary_time(ch, on) {
                        sim.schedule_at(
                            at,
                            PlaneEvent::FaultWindowEdge {
                                channel: ch,
                                window: w,
                                rising: true,
                            },
                        );
                    }
                }
            }
        }
        for cohort in &cohorts {
            let first = cohort[0];
            let period = sim.model().plane.period_us(first);
            sim.schedule_at(SimTime::from_micros(period), PlaneEvent::Sense(first));
        }
        EventPlane { sim }
    }

    /// Schedules a goal retarget for a channel at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not finite or `at_us` is in the past.
    pub fn schedule_goal_change(&mut self, at_us: u64, channel: ChannelId, target: f64) {
        assert!(target.is_finite(), "goal target must be finite: {target}");
        self.sim.schedule_at(
            SimTime::from_micros(at_us),
            PlaneEvent::GoalChange { channel, target },
        );
    }

    /// Runs the calendar up to and including `deadline_us`.
    pub fn run_until_us(&mut self, deadline_us: u64) {
        self.sim.run_until(SimTime::from_micros(deadline_us));
    }

    /// Current simulated time, microseconds.
    pub fn now_us(&self) -> u64 {
        self.sim.now().as_micros()
    }

    /// Time of the next scheduled plane event, microseconds. The pacing
    /// hook for plants that run their own event loop alongside the
    /// kernel: process workload events up to this instant, then hand
    /// control back via [`EventPlane::run_until_us`].
    pub fn next_event_us(&self) -> Option<u64> {
        self.sim.next_event_time().map(|t| t.as_micros())
    }

    /// Calendar events processed so far (senses, actuations, goal
    /// changes, and fault edges all count; the perf gate tracks this as
    /// events/sec).
    pub fn events_processed(&self) -> u64 {
        self.sim.steps()
    }

    /// The plane (log, settings, chaos state).
    pub fn plane(&self) -> &ControlPlane {
        &self.sim.model().plane
    }

    /// The plant under control.
    pub fn plant(&self) -> &P {
        &self.sim.model().plant
    }

    /// Mutable plant access (e.g. to read out metric recorders).
    pub fn plant_mut(&mut self) -> &mut P {
        &mut self.sim.model_mut().plant
    }

    /// Consumes the kernel, returning the plane and the plant.
    pub fn into_parts(self) -> (ControlPlane, P) {
        let model = self.sim.into_model();
        (model.plane, model.plant)
    }

    /// Consumes the kernel, returning the epoch log.
    pub fn into_log(self) -> EpochLog {
        self.into_parts().0.into_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaosSpec, Decider, FaultClass, GuardPolicy, Sensed};
    use smartconf_core::{Controller, Goal, Hardness, SmartConf, SmartConfIndirect};

    const PERIOD: u64 = 1_000_000;

    /// A synthetic plant usable by both the lockstep shim and the event
    /// kernel: the metric is a pure function of the settings plus noise
    /// keyed off a per-channel sense counter (so both drivers observe
    /// identical sequences regardless of who owns the clock).
    #[derive(Clone)]
    struct TwinPlant {
        gain: f64,
        settings: Vec<f64>,
        senses: Vec<u64>,
        noise_seed: u64,
        t_us: u64,
        step: u64,
        horizon: u64,
        restarts: u64,
        sheds: u64,
    }

    impl TwinPlant {
        fn new(channels: usize, gain: f64, noise_seed: u64, horizon: u64) -> Self {
            TwinPlant {
                gain,
                settings: vec![10.0; channels],
                senses: vec![0; channels],
                noise_seed,
                t_us: 0,
                step: 0,
                horizon,
                restarts: 0,
                sheds: 0,
            }
        }

        fn noise(&self, chan: usize) -> f64 {
            let mut z = self
                .noise_seed
                .wrapping_add((chan as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(self.senses[chan].wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 6.0
        }
    }

    impl Plant for TwinPlant {
        fn now_us(&self) -> u64 {
            self.t_us
        }
        fn sense(&mut self, chan: ChannelId) -> Sensed {
            let i = chan.index();
            let total: f64 = self.settings.iter().sum();
            let noise = self.noise(i);
            self.senses[i] += 1;
            Sensed::with_deputy(self.gain * total + noise, self.settings[i])
        }
        fn apply(&mut self, chan: ChannelId, setting: f64) {
            self.settings[chan.index()] = setting;
        }
        fn advance(&mut self) -> bool {
            self.t_us += PERIOD;
            self.step += 1;
            self.step <= self.horizon
        }
        fn restart(&mut self, chan: ChannelId) {
            self.settings[chan.index()] = 10.0;
            self.restarts += 1;
        }
        fn shed(&mut self, chan: ChannelId) {
            let i = chan.index();
            self.settings[i] = self.settings[i].min(40.0);
            self.sheds += 1;
        }
    }

    /// Bit-exact event equality: chaos legitimately writes `NaN` into
    /// `measured`/`target` (corruption faults, static channels), and
    /// `NaN != NaN` under `PartialEq`, so byte-identity must compare
    /// float bit patterns.
    fn same_event(a: &crate::EpochEvent, b: &crate::EpochEvent) -> bool {
        a.epoch == b.epoch
            && a.t_us == b.t_us
            && a.channel == b.channel
            && a.setting.to_bits() == b.setting.to_bits()
            && a.measured.to_bits() == b.measured.to_bits()
            && a.target.to_bits() == b.target.to_bits()
            && a.error.to_bits() == b.error.to_bits()
            && a.pole.to_bits() == b.pole.to_bits()
            && a.saturated == b.saturated
            && a.faults == b.faults
            && a.guards == b.guards
    }

    fn first_divergence(a: &[crate::EpochEvent], b: &[crate::EpochEvent]) -> Option<String> {
        if a.len() != b.len() {
            return Some(format!("event counts differ: {} vs {}", a.len(), b.len()));
        }
        a.iter().zip(b).enumerate().find_map(|(i, (x, y))| {
            (!same_event(x, y))
                .then(|| format!("event {i} diverged:\n  lockstep: {x:?}\n  kernel:   {y:?}"))
        })
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn controller(target: f64, hardness: Hardness) -> Controller {
        let goal = Goal::new("m", target).with_hardness(hardness).unwrap();
        Controller::new(1.0, 0.3, goal, 0.1, (0.0, 500.0), 10.0).unwrap()
    }

    /// The plane shapes of the scenario roster: single direct (CA6059,
    /// HB2149, HB3813, HB6728, HD4995, MR2820 style) and dual deputy
    /// sharing a super-hard metric (TWIN style).
    fn build_plane(shape: usize, shed: bool) -> ControlPlane {
        let mut b = ControlPlane::builder();
        match shape {
            0 => {
                b.channel(
                    "solo",
                    Decider::Direct(Box::new(SmartConf::new(
                        "solo",
                        controller(200.0, Hardness::Hard),
                    ))),
                );
            }
            1 => {
                for name in ["qa", "qb"] {
                    b.channel(
                        name,
                        Decider::Deputy(Box::new(SmartConfIndirect::new(
                            name,
                            controller(300.0, Hardness::SuperHard),
                        ))),
                    );
                }
            }
            _ => {
                b.channel(
                    "smart",
                    Decider::Direct(Box::new(SmartConf::new(
                        "smart",
                        controller(250.0, Hardness::Hard),
                    ))),
                );
                b.channel("fixed", Decider::Static(30.0));
            }
        }
        let plane = b.build();
        let _ = shed;
        plane
    }

    fn arm(plane: &mut ControlPlane, class: Option<FaultClass>, seed: u64, shed: bool) {
        if let Some(class) = class {
            let mut guard = GuardPolicy::new()
                .watchdog_epochs(3)
                .divergence(3, 20)
                .fallback_setting("solo", 25.0)
                .fallback_setting("qa", 35.0)
                .fallback_setting("qb", 35.0)
                .fallback_setting("smart", 25.0);
            if shed {
                guard = guard.shed_admitted(true);
            }
            plane.enable_chaos(ChaosSpec::standard(class, seed).with_guard(guard));
        }
    }

    fn lockstep_run(
        shape: usize,
        class: Option<FaultClass>,
        seed: u64,
        horizon: u64,
        shed: bool,
    ) -> (Vec<crate::EpochEvent>, TwinPlant) {
        let mut plane = build_plane(shape, shed);
        arm(&mut plane, class, seed, shed);
        let channels = plane.channel_count();
        let mut plant = TwinPlant::new(channels, 1.0, seed ^ 0xD15C, horizon);
        plane.run(&mut plant);
        (plane.into_log().events().copied().collect(), plant)
    }

    fn kernel_run(
        shape: usize,
        class: Option<FaultClass>,
        seed: u64,
        horizon: u64,
        shed: bool,
    ) -> (Vec<crate::EpochEvent>, TwinPlant) {
        let mut plane = build_plane(shape, shed);
        arm(&mut plane, class, seed, shed);
        let channels = plane.channel_count();
        let plant = TwinPlant::new(channels, 1.0, seed ^ 0xD15C, horizon);
        let mut events = EventPlane::new(plane, plant);
        events.run_until_us(horizon * PERIOD);
        let (plane, plant) = events.into_parts();
        (plane.into_log().events().copied().collect(), plant)
    }

    fn arm_campaign(plane: &mut ControlPlane, campaign: crate::Campaign, seed: u64) {
        let guard = GuardPolicy::new()
            .watchdog_epochs(3)
            .divergence(3, 20)
            .fallback_setting("solo", 25.0)
            .fallback_setting("qa", 35.0)
            .fallback_setting("qb", 35.0)
            .fallback_setting("smart", 25.0)
            .campaign_hardened();
        plane.enable_chaos(ChaosSpec::campaign(campaign, seed).with_guard(guard));
    }

    fn campaign_run(
        kernel: bool,
        shape: usize,
        campaign: crate::Campaign,
        seed: u64,
        horizon: u64,
    ) -> (Vec<crate::EpochEvent>, TwinPlant) {
        let mut plane = build_plane(shape, false);
        arm_campaign(&mut plane, campaign, seed);
        let channels = plane.channel_count();
        let mut plant = TwinPlant::new(channels, 1.0, seed ^ 0xD15C, horizon);
        if kernel {
            let mut events = EventPlane::new(plane, plant);
            events.run_until_us(horizon * PERIOD);
            let (plane, plant) = events.into_parts();
            (plane.into_log().events().copied().collect(), plant)
        } else {
            plane.run(&mut plant);
            (plane.into_log().events().copied().collect(), plant)
        }
    }

    #[test]
    fn uniform_periods_match_lockstep_under_every_campaign() {
        // Compound campaigns drive overlapping windows — including the
        // per-channel staggered ones of cascading-dropout, which shape 1
        // (two channels) exercises through both the lockstep per-epoch
        // scan and the kernel's edge scheduler.
        for campaign in crate::Campaign::ALL {
            for shape in 0..3 {
                let (a, pa) = campaign_run(false, shape, campaign, 11, 400);
                let (b, pb) = campaign_run(true, shape, campaign, 11, 400);
                if let Some(d) = first_divergence(&a, &b) {
                    panic!("{campaign} shape {shape}: {d}");
                }
                assert!(
                    a.iter().any(|e| !e.faults.is_empty()),
                    "{campaign} shape {shape}: no faults fired"
                );
                assert_eq!(pa.restarts, pb.restarts, "{campaign} restart calls");
                assert_eq!(pa.sheds, pb.sheds, "{campaign} shed calls");
                assert_eq!(bits(&pa.settings), bits(&pb.settings));
            }
        }
    }

    #[test]
    fn uniform_periods_match_lockstep_clean() {
        for shape in 0..3 {
            let (a, pa) = lockstep_run(shape, None, 7, 120, false);
            let (b, pb) = kernel_run(shape, None, 7, 120, false);
            if let Some(d) = first_divergence(&a, &b) {
                panic!("shape {shape}: {d}");
            }
            assert!(!a.is_empty());
            assert_eq!(bits(&pa.settings), bits(&pb.settings));
        }
    }

    #[test]
    fn uniform_periods_match_lockstep_under_every_fault_class() {
        for class in FaultClass::ALL {
            for shape in 0..3 {
                let (a, pa) = lockstep_run(shape, Some(class), 11, 400, false);
                let (b, pb) = kernel_run(shape, Some(class), 11, 400, false);
                if let Some(d) = first_divergence(&a, &b) {
                    panic!("{class} shape {shape}: {d}");
                }
                assert_eq!(pa.restarts, pb.restarts, "{class} restart calls");
                assert_eq!(bits(&pa.settings), bits(&pb.settings));
            }
        }
    }

    #[test]
    fn shed_notifications_reach_the_plant_identically() {
        // SensorDropout trips the watchdog; with shed_admitted the plant
        // must see the same shed() calls from both drivers.
        let (a, pa) = lockstep_run(0, Some(FaultClass::SensorDropout), 3, 400, true);
        let (b, pb) = kernel_run(0, Some(FaultClass::SensorDropout), 3, 400, true);
        if let Some(d) = first_divergence(&a, &b) {
            panic!("{d}");
        }
        assert!(pa.sheds > 0, "dropout never triggered a shed");
        assert_eq!(pa.sheds, pb.sheds);
        assert!(a.iter().any(|e| e.guards.contains(crate::GuardSet::SHED)));
    }

    #[test]
    fn heterogeneous_periods_sense_at_their_own_cadence() {
        let mut b = ControlPlane::builder();
        let fast = b.channel_with_period(
            "fast",
            Decider::Direct(Box::new(SmartConf::new(
                "fast",
                controller(200.0, Hardness::Hard),
            ))),
            250_000,
        );
        let slow = b.channel_with_period(
            "slow",
            Decider::Direct(Box::new(SmartConf::new(
                "slow",
                controller(200.0, Hardness::Hard),
            ))),
            1_000_000,
        );
        let plane = b.build();
        assert_eq!(plane.period_us(fast), 250_000);
        assert_eq!(plane.period_us(slow), 1_000_000);
        let plant = TwinPlant::new(2, 1.0, 1, u64::MAX);
        let mut events = EventPlane::new(plane, plant);
        events.run_until_us(10_000_000);
        let log = events.plane().log();
        assert_eq!(log.events_for("fast").count(), 40);
        assert_eq!(log.events_for("slow").count(), 10);
        // Epoch e of a channel senses at (e + 1) · period.
        let t: Vec<u64> = log.events_for("fast").take(3).map(|e| e.t_us).collect();
        assert_eq!(t, vec![250_000, 500_000, 750_000]);
        let t: Vec<u64> = log.events_for("slow").take(2).map(|e| e.t_us).collect();
        assert_eq!(t, vec![1_000_000, 2_000_000]);
    }

    #[test]
    fn heterogeneous_chaos_replays_exactly() {
        let run = || {
            let mut b = ControlPlane::builder();
            b.channel_with_period(
                "fast",
                Decider::Direct(Box::new(SmartConf::new(
                    "fast",
                    controller(200.0, Hardness::Hard),
                ))),
                200_000,
            );
            b.channel_with_period(
                "slow",
                Decider::Direct(Box::new(SmartConf::new(
                    "slow",
                    controller(220.0, Hardness::Hard),
                ))),
                700_000,
            );
            let mut plane = b.build();
            plane.enable_chaos(
                ChaosSpec::standard(FaultClass::SensorDropout, 9)
                    .with_guard(GuardPolicy::new().watchdog_epochs(3)),
            );
            let plant = TwinPlant::new(2, 1.0, 5, u64::MAX);
            let mut events = EventPlane::new(plane, plant);
            events.run_until_us(60_000_000);
            events.into_log().events().copied().collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        if let Some(d) = first_divergence(&a, &b) {
            panic!("{d}");
        }
        assert!(a.iter().any(|e| !e.faults.is_empty()), "no faults fired");
    }

    #[test]
    fn goal_change_retargets_on_schedule() {
        let (plane, chan) = ControlPlane::single(
            "c",
            Decider::Direct(Box::new(SmartConf::new(
                "c",
                controller(200.0, Hardness::Hard),
            ))),
        );
        let plant = TwinPlant::new(1, 1.0, 2, u64::MAX);
        let mut events = EventPlane::new(plane, plant);
        events.schedule_goal_change(5_500_000, chan, 80.0);
        events.run_until_us(30_000_000);
        let log = events.plane().log();
        let before = log.events_for("c").find(|e| e.epoch == 4).unwrap();
        let after = log.events_for("c").find(|e| e.epoch == 20).unwrap();
        assert!((before.target - 180.0).abs() < 1e-9, "λ 0.1 virtual goal");
        assert!(
            (after.target - 72.0).abs() < 1e-9,
            "retargeted virtual goal"
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn goal_change_rejects_non_finite_targets() {
        let (plane, chan) = ControlPlane::single("c", Decider::Static(1.0));
        let plant = TwinPlant::new(1, 1.0, 0, 1);
        let mut events = EventPlane::new(plane, plant);
        events.schedule_goal_change(1, chan, f64::NAN);
    }

    #[test]
    fn event_counter_reports_calendar_steps() {
        let (plane, _) = ControlPlane::single("c", Decider::Static(5.0));
        let plant = TwinPlant::new(1, 1.0, 3, u64::MAX);
        let mut events = EventPlane::new(plane, plant);
        // Before any processing the calendar's head is epoch 0's sense,
        // one warm-up period in — the co-simulation pacing hook.
        assert_eq!(events.next_event_us(), Some(PERIOD));
        events.run_until_us(10_000_000);
        // 10 epochs × (Sense + Actuate), no chaos edges.
        assert_eq!(events.events_processed(), 20);
        assert_eq!(events.now_us(), 10_000_000);
        // The chain keeps itself alive: epoch 10's sense is pending.
        assert_eq!(events.next_event_us(), Some(11 * PERIOD));
    }

    proptest::proptest! {
        /// Tentpole property: an event-driven run with all periods equal
        /// is byte-identical to the lockstep shim — across the roster's
        /// plane shapes (single direct, dual super-hard deputy,
        /// smart+static), every fault class and clean, and arbitrary
        /// seeds.
        #[test]
        fn uniform_event_runs_equal_lockstep(
            shape in 0usize..3,
            class_idx in 0usize..=FaultClass::ALL.len(), // == len ⇒ clean
            seed in 0u64..10_000,
            horizon in 50u64..300,
            shed in proptest::bool::ANY,
        ) {
            let class = FaultClass::ALL.get(class_idx).copied();
            let (a, pa) = lockstep_run(shape, class, seed, horizon, shed);
            let (b, pb) = kernel_run(shape, class, seed, horizon, shed);
            if let Some(d) = first_divergence(&a, &b) {
                panic!("{d}");
            }
            proptest::prop_assert_eq!(bits(&pa.settings), bits(&pb.settings));
            proptest::prop_assert_eq!(pa.restarts, pb.restarts);
            proptest::prop_assert_eq!(pa.sheds, pb.sheds);
        }
    }
}
