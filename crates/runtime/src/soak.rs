//! Cohort calendar: batched sense dispatch for million-tenant soaks.
//!
//! The soak mode shards a scenario's tenants into *cohorts* by sensing
//! period. Scheduling one heap event per tenant per epoch would put
//! millions of entries on the calendar; instead the calendar carries
//! **one event per (cohort, tick)** and the soak engine sweeps every
//! tenant in that cohort when the tick fires. Idle tenants therefore
//! cost zero between sense events — the PR-5 event-heap claim, exercised
//! at fleet scale.
//!
//! [`run_cohort_calendar`] is deliberately tiny: it owns only the
//! simkernel scheduling discipline (which cohort fires when, in which
//! deterministic order) and delegates all tenant work to a callback.
//! Ties at the same instant fire in cohort-index order because the
//! kernel's heap is FIFO-stable and the first tick for every cohort is
//! seeded in index order.

use smartconf_simkernel::{Context, Model, SimDuration, SimTime, Simulation};

/// One cohort's place on the calendar.
struct CohortTick {
    /// Sensing period, µs. Each firing reschedules `period_us` ahead.
    period_us: u64,
}

struct Calendar<F> {
    cohorts: Vec<CohortTick>,
    horizon_us: u64,
    /// Epochs fired so far, per cohort (0-based epoch passed to the callback).
    fired: Vec<u64>,
    on_sense: F,
}

impl<F: FnMut(usize, u64, u64)> Model for Calendar<F> {
    type Event = usize;

    fn handle(&mut self, cohort: usize, ctx: &mut Context<'_, usize>) {
        let now = ctx.now().as_micros();
        if now >= self.horizon_us {
            return;
        }
        let epoch = self.fired[cohort];
        self.fired[cohort] += 1;
        (self.on_sense)(cohort, epoch, now);
        let period = self.cohorts[cohort].period_us;
        if now + period < self.horizon_us {
            ctx.schedule_in(SimDuration::from_micros(period), cohort);
        }
    }
}

/// The number of sense epochs a cohort with sensing period `period_us`
/// fires over `[0, horizon_us)`: ticks land at `p, 2p, …` strictly
/// before the horizon, so the count is `⌊(horizon − 1) / p⌋`.
///
/// The soak's fault-plane arms size their tenant-keyed burst windows
/// from this budget (see `TenantFaultWindows::sized_for` in
/// [`crate::fault`]), so window geometry and the calendar's actual tick
/// count can never drift apart.
pub fn cohort_epochs(period_us: u64, horizon_us: u64) -> u64 {
    if horizon_us == 0 {
        return 0;
    }
    (horizon_us - 1) / period_us.max(1)
}

/// Drives every cohort's sense ticks over `[0, horizon_us)` on the
/// simkernel event heap.
///
/// Cohort `i` senses at `periods_us[i], 2·periods_us[i], …` (the first
/// tick is one full period in, matching the epoch loop's
/// sense-after-run discipline). On each tick, `on_sense(cohort, epoch,
/// now_us)` is invoked once — the callback sweeps the cohort's tenant
/// slab. Simultaneous ticks fire in ascending cohort order, so the
/// callback sequence is a pure function of `(periods_us, horizon_us)`.
///
/// Returns the total number of cohort ticks fired.
pub fn run_cohort_calendar<F>(periods_us: &[u64], horizon_us: u64, on_sense: F) -> u64
where
    F: FnMut(usize, u64, u64),
{
    let cohorts: Vec<CohortTick> = periods_us
        .iter()
        .map(|&p| CohortTick {
            period_us: p.max(1),
        })
        .collect();
    let n = cohorts.len();
    let model = Calendar {
        cohorts,
        horizon_us,
        fired: vec![0; n],
        on_sense,
    };
    // Seed is irrelevant: the calendar never consults the kernel RNG.
    let mut sim = Simulation::new(model, 0);
    for (i, &p) in periods_us.iter().enumerate() {
        let first = p.max(1);
        if first < horizon_us {
            sim.schedule_at(SimTime::from_micros(first), i);
        }
    }
    sim.run();
    sim.into_model().fired.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_counts_match_period_arithmetic() {
        // Horizon 10 s, periods 1 s / 2 s / 3 s: ticks at p, 2p, … < 10 s.
        let mut ticks = vec![0u64; 3];
        let total =
            run_cohort_calendar(&[1_000_000, 2_000_000, 3_000_000], 10_000_000, |c, _, _| {
                ticks[c] += 1
            });
        assert_eq!(ticks, vec![9, 4, 3]);
        assert_eq!(total, 16);
    }

    #[test]
    fn cohort_epochs_matches_the_calendar() {
        // The closed form the fault arms size their windows from must
        // agree with what the calendar actually fires.
        for (period, horizon) in [
            (1_000_000u64, 10_000_000u64),
            (2_000_000, 10_000_000),
            (3_000_000, 10_000_000),
            (900_000_000, 86_400_000_000),
            (3_600_000_000, 86_400_000_000),
            (1_000_000, 1_000_000), // first tick lands on the horizon
            (5, 0),
            (0, 3),
        ] {
            let mut fired = 0u64;
            run_cohort_calendar(&[period], horizon, |_, _, _| fired += 1);
            assert_eq!(
                cohort_epochs(period, horizon),
                fired,
                "period {period} horizon {horizon}"
            );
        }
    }

    #[test]
    fn epochs_and_times_are_consistent() {
        let mut log = Vec::new();
        run_cohort_calendar(&[500_000, 250_000], 2_000_000, |c, e, t| {
            log.push((c, e, t))
        });
        for &(c, e, t) in &log {
            let period = [500_000u64, 250_000][c];
            assert_eq!(t, (e + 1) * period, "cohort {c} epoch {e}");
        }
        // Simultaneous ticks (t = 500k, 1M, 1.5M) fire in cohort order.
        for pair in log.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(a.2 < b.2 || (a.2 == b.2 && a.0 < b.0), "{a:?} !< {b:?}");
        }
    }

    #[test]
    fn callback_order_is_reproducible() {
        let trace = |seedless: &mut Vec<(usize, u64)>| {
            run_cohort_calendar(&[900, 1800, 2700, 3600], 100_000, |c, e, _| {
                seedless.push((c, e))
            });
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        trace(&mut a);
        trace(&mut b);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(run_cohort_calendar(&[], 1_000_000, |_, _, _| {}), 0);
        assert_eq!(
            run_cohort_calendar(&[1_000_000], 1_000_000, |_, _, _| {}),
            0
        );
        // Zero period is clamped to 1 µs, not an infinite loop.
        assert_eq!(run_cohort_calendar(&[0], 3, |_, _, _| {}), 2);
    }
}
