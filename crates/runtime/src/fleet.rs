//! Deterministic multi-threaded fleet execution.
//!
//! Fleet-scale evaluation (many scenarios × seeds × goal variants) is
//! embarrassingly parallel: every shard owns its own seeded RNG, its own
//! plant, and its own [`ControlPlane`](crate::ControlPlane), so shards
//! never share mutable state. The [`FleetExecutor`] exploits that: it
//! shards a work-item list across `std::thread::scope` workers and
//! merges results back **in work-item order**, so the output is
//! byte-identical whether it ran on 1 thread or N — parallelism is a
//! pure wall-clock optimization, never an observable behavior change.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Shards work items across a fixed pool of scoped worker threads and
/// merges the results deterministically.
///
/// Workers claim items from a shared atomic cursor (dynamic scheduling,
/// so one slow shard does not idle the rest of the pool), but each
/// result is keyed by its item index and the merged vector is returned
/// in item order. As long as the shard function is a pure function of
/// `(index, item)`, the output is identical at any thread count.
///
/// # Example
///
/// ```
/// use smartconf_runtime::{shard_seed, FleetExecutor};
///
/// let items: Vec<u64> = (0..100).collect();
/// let run = |i: usize, seed: &u64| shard_seed(*seed, i as u64) % 97;
/// let serial = FleetExecutor::new(1).execute(&items, run);
/// let parallel = FleetExecutor::new(8).execute(&items, run);
/// assert_eq!(serial, parallel); // byte-identical at 1 vs 8 threads
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetExecutor {
    threads: NonZeroUsize,
    /// Claim granularity override; `None` picks an adaptive chunk per
    /// [`FleetExecutor::execute`] call.
    chunk: Option<NonZeroUsize>,
}

impl FleetExecutor {
    /// Creates an executor with the given worker count.
    ///
    /// The count is clamped to ≥ 1: `new(0)` behaves exactly like
    /// `new(1)` (a serial executor), it does not panic. There is no
    /// upper clamp — `new(usize::MAX)` is accepted and
    /// [`FleetExecutor::threads`] reports it verbatim — because
    /// [`FleetExecutor::execute`] never spawns more workers than there
    /// are work items, so an oversized executor costs nothing.
    ///
    /// ```
    /// use smartconf_runtime::FleetExecutor;
    ///
    /// assert_eq!(FleetExecutor::new(0).threads(), 1); // clamped
    /// assert_eq!(FleetExecutor::new(usize::MAX).threads(), usize::MAX);
    /// ```
    pub fn new(threads: usize) -> Self {
        FleetExecutor {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"),
            chunk: None,
        }
    }

    /// Overrides the claim granularity: workers advance the shared
    /// cursor by `chunk` items per claim instead of the adaptive
    /// default. A chunk of 0 is clamped to 1; oversized chunks (up to
    /// `usize::MAX`) are capped at the item count per `execute` call.
    ///
    /// Chunking only changes *which worker* runs an item, never the
    /// merged output order, so results stay byte-identical at any
    /// `(threads, chunk)` combination.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(NonZeroUsize::new(chunk.max(1)).expect("max(1) is non-zero"));
        self
    }

    /// An executor sized to the machine: one worker per available core
    /// (falling back to 1 when parallelism cannot be queried).
    pub fn available_parallelism() -> Self {
        FleetExecutor::new(thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Maps `run` over `items` on the worker pool and returns the
    /// results in item order.
    ///
    /// `run` receives the item's index alongside the item so shards can
    /// derive per-shard seeds (see [`shard_seed`]). A single-thread
    /// executor short-circuits to a plain serial loop — the reference
    /// order that N-thread runs must reproduce.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker after all workers finish.
    pub fn execute<I, O, F>(&self, items: &[I], run: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        if self.threads.get() == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, it)| run(i, it)).collect();
        }
        let workers = self.threads.get().min(items.len());
        // Workers claim a chunk of consecutive items per cursor bump
        // instead of one, amortizing the shared-cacheline traffic. The
        // adaptive default leaves ~4 claims per worker so dynamic
        // scheduling still balances uneven shard costs; the cap at the
        // item count keeps the cursor far from overflow even with a
        // `usize::MAX` chunk override.
        let chunk = match self.chunk {
            Some(c) => c.get(),
            None => (items.len() / (workers * 4)).max(1),
        }
        .min(items.len());
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, O)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Pre-sized for an even split plus one extra
                        // claim, so steady-state pushes never reallocate.
                        let mut local = Vec::with_capacity(items.len() / workers + chunk);
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = start.saturating_add(chunk).min(items.len());
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                local.push((i, run(i, item)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        });
        tagged.sort_unstable_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, out)| out).collect()
    }
}

/// Derives a per-shard RNG seed from a base seed and a work-item index.
///
/// Uses a SplitMix64 finalizer so neighboring indices produce
/// well-separated seeds (index `i` and `i+1` differ in ~half their
/// bits), while staying a pure function of `(base, index)` — the
/// property fleet determinism rests on.
///
/// ```
/// use smartconf_runtime::shard_seed;
///
/// assert_eq!(shard_seed(42, 3), shard_seed(42, 3));
/// assert_ne!(shard_seed(42, 3), shard_seed(42, 4));
/// ```
pub fn shard_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest::proptest! {
        /// Satellite property: the executor's output is a pure function
        /// of the work items — identical at 1, 2, and 8 worker threads.
        #[test]
        fn executor_output_is_identical_across_thread_counts(
            items in proptest::collection::vec(0u64..u64::MAX, 0..50),
            base in 0u64..u64::MAX,
        ) {
            let run = |threads: usize| {
                FleetExecutor::new(threads).execute(&items, |i, &x| shard_seed(base, i as u64) ^ x)
            };
            let reference = run(1);
            proptest::prop_assert_eq!(&run(2), &reference);
            proptest::prop_assert_eq!(&run(8), &reference);
        }
    }

    proptest::proptest! {
        /// Satellite property: chunked claiming (1, 4, 16, usize::MAX)
        /// yields exactly the serial reference output order, for ragged
        /// item counts — empty, singleton, fewer items than workers, and
        /// many more items than workers.
        #[test]
        fn chunked_claiming_matches_serial_reference(
            count_pick in 0usize..4,
            threads in 2usize..9,
            base in 0u64..u64::MAX,
        ) {
            let count = [0usize, 1, 3, 97][count_pick]; // workers come from 2..9
            let items: Vec<u64> = (0..count as u64).collect();
            let run = |i: usize, x: &u64| shard_seed(base, i as u64) ^ *x;
            let reference = FleetExecutor::new(1).execute(&items, run);
            for chunk in [1usize, 4, 16, usize::MAX] {
                let out = FleetExecutor::new(threads).with_chunk(chunk).execute(&items, run);
                proptest::prop_assert_eq!(&out, &reference, "chunk {}", chunk);
            }
            // The adaptive default must agree too.
            let adaptive = FleetExecutor::new(threads).execute(&items, run);
            proptest::prop_assert_eq!(&adaptive, &reference);
        }
    }

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = FleetExecutor::new(4).execute(&items, |i, &x| {
            // Stagger finish order so late items complete before early ones.
            if i % 7 == 0 {
                thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, (0..64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let items: Vec<u64> = (0..50).collect();
        let run = |i: usize, seed: &u64| shard_seed(*seed, i as u64);
        let reference = FleetExecutor::new(1).execute(&items, run);
        for threads in [2, 3, 8, 32] {
            assert_eq!(FleetExecutor::new(threads).execute(&items, run), reference);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let exec = FleetExecutor::new(8);
        assert_eq!(exec.execute(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
        assert_eq!(exec.execute(&[9u64], |i, &x| x + i as u64), vec![9]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(FleetExecutor::new(0).threads(), 1);
        assert_eq!(FleetExecutor::new(0), FleetExecutor::new(1));
    }

    #[test]
    fn usize_max_threads_is_capped_by_item_count() {
        // The clamp has no upper bound, but execute() spawns at most one
        // worker per item — so a usize::MAX executor must not try to
        // spawn usize::MAX threads (it would abort the process).
        let exec = FleetExecutor::new(usize::MAX);
        assert_eq!(exec.threads(), usize::MAX);
        let items: Vec<u64> = (0..6).collect();
        let out = exec.execute(&items, |i, &x| x + i as u64);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn shard_seeds_are_well_separated() {
        let a = shard_seed(42, 0);
        let b = shard_seed(42, 1);
        assert_ne!(a, b);
        // Different bases must decorrelate too.
        assert_ne!(shard_seed(1, 5), shard_seed(2, 5));
    }
}
