//! Controller-side resilience guards: the defense half of the chaos
//! plane.
//!
//! [`GuardPolicy`] configures the degradation ladder the control plane
//! walks when [`FaultInjector`](crate::FaultInjector) faults (or real
//! disturbances) hit a channel:
//!
//! 1. **Admission** — non-finite readings and spikes far from the median
//!    of recent readings are rejected before they reach the controller
//!    ([`smartconf_core::MedianFilter`]); injected stale repeats are
//!    detected by an exact-repeat run combined with an error band (so
//!    legitimately quantized readings don't false-trigger).
//! 2. **Watchdog** — after `watchdog_epochs` consecutive epochs without
//!    an admitted reading, the channel reverts to the last setting
//!    decided while healthy, instead of holding whatever a corrupted
//!    tail decided.
//! 3. **Anti-windup** — when the actuator saturates, the integrator is
//!    back-calculated to the applied value so it doesn't wind up beyond
//!    what the plant can do.
//! 4. **Divergence fallback** — when the tracking error keeps growing on
//!    the violating side for `divergence_streak` consecutive admitted
//!    epochs of a hard goal, the channel degrades to its profiled-safe
//!    static fallback setting and re-engages after `cooldown_epochs`.
//! 5. **Restart recovery** — a plant restart resets the controller to
//!    its initial setting, clears guard state, and raises a re-profiling
//!    request the embedder can poll.
//!
//! Arm a plane with [`ControlPlane::enable_chaos`](crate::ControlPlane::enable_chaos);
//! every activation is recorded on the epoch event as a [`GuardSet`].

use std::collections::VecDeque;

use smartconf_core::MedianFilter;

use crate::fault::FaultPlan;

/// Bit set of resilience-guard activations on one epoch (recorded on
/// [`EpochEvent`](crate::EpochEvent)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardSet(u16);

impl GuardSet {
    /// No admitted reading this epoch (dropped, rejected, or stale-held).
    pub const MISSED: GuardSet = GuardSet(1 << 0);
    /// The admission filter rejected the reading (non-finite or spike).
    pub const REJECTED: GuardSet = GuardSet(1 << 1);
    /// The stale detector held back an exactly-repeated reading.
    pub const STALE_HOLD: GuardSet = GuardSet(1 << 2);
    /// The watchdog reverted to the last healthy setting.
    pub const WATCHDOG: GuardSet = GuardSet(1 << 3);
    /// The divergence detector entered fallback this epoch.
    pub const FALLBACK_ENTER: GuardSet = GuardSet(1 << 4);
    /// The channel spent this epoch in divergence fallback.
    pub const FALLBACK: GuardSet = GuardSet(1 << 5);
    /// The channel re-engaged its controller after a fallback cooldown.
    pub const REENGAGE: GuardSet = GuardSet(1 << 6);
    /// Anti-windup back-calculated the integrator to the applied value.
    pub const ANTI_WINDUP: GuardSet = GuardSet(1 << 7);
    /// A restart raised the channel's re-profiling request.
    pub const REPROFILE: GuardSet = GuardSet(1 << 8);
    /// The guard asked the plant to shed already-admitted work down to
    /// the in-force bound (see [`GuardPolicy::shed_admitted`]).
    pub const SHED: GuardSet = GuardSet(1 << 9);
    /// A restart reset an adaptive channel's estimator covariance for
    /// in-place relearning (instead of raising [`GuardSet::REPROFILE`]).
    pub const RELEARN: GuardSet = GuardSet(1 << 10);
    /// The adaptive model's confidence fell below
    /// [`GuardPolicy::confidence_floor`]; the channel degraded to its
    /// profiled-safe fallback until the estimator recovers.
    pub const MODEL_DOUBT: GuardSet = GuardSet(1 << 11);
    /// The sensor-voting filter substituted the median of recent
    /// admitted readings for a rejected one (see
    /// [`GuardPolicy::sensor_vote`]), keeping the controller fed instead
    /// of blind.
    pub const VOTED: GuardSet = GuardSet(1 << 12);

    /// Adds the bits of `other`.
    pub fn insert(&mut self, other: GuardSet) {
        self.0 |= other.0;
    }

    /// Whether every bit of `other` is set.
    pub fn contains(&self, other: GuardSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no guard activated.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// The confidence floor the case-study scenarios arm on adaptive chaos
/// runs ([`GuardPolicy::confidence_floor`]): low enough that a healthy
/// estimator (seeded near its profile, residuals small) never trips it,
/// high enough that a corrupted-feedback collapse degrades the channel
/// to its profiled-safe fallback within a few epochs.
pub const ADAPTIVE_CONFIDENCE_FLOOR: f64 = 0.15;

/// The sensor-vote window the scenarios arm on compound-fault campaign
/// runs ([`GuardPolicy::campaign_hardened`]): wide enough that one
/// corrupted burst cannot dominate the median, narrow enough that the
/// substituted consensus still tracks a moving plant.
pub const CAMPAIGN_VOTE_WINDOW: usize = 5;

/// The re-engage backoff cap the scenarios arm on campaign runs
/// ([`GuardPolicy::campaign_hardened`]): at most 4 doublings, i.e. a
/// 16× longest cooldown before the schedule saturates.
pub const CAMPAIGN_BACKOFF_DOUBLINGS: u32 = 4;

/// Tuning of the resilience guards, one policy per plane.
///
/// # Example
///
/// ```
/// use smartconf_runtime::GuardPolicy;
///
/// let policy = GuardPolicy::new()
///     .watchdog_epochs(3)        // revert after 3 missed epochs
///     .spike_filter(5, 8.0)      // median of 5, reject beyond 8x
///     .stale_detection(8, 0.05)  // 8 exact repeats while off-target
///     .divergence(3, 60)         // 3 worsening epochs -> 60-epoch fallback
///     .fallback_setting("max.queue.size", 40.0);
/// assert_eq!(policy.watchdog_epochs, 3);
/// assert!(policy.anti_windup);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GuardPolicy {
    /// Consecutive epochs without an admitted reading before the
    /// watchdog reverts to the last healthy setting.
    pub watchdog_epochs: u64,
    /// Window length of the median spike filter.
    pub spike_window: usize,
    /// Spike threshold: readings beyond `ratio × (1 + |median|)` are
    /// rejected once the window has warmed up.
    pub spike_ratio: f64,
    /// Exact-repeat run length before a reading counts as stale.
    pub stale_epochs: u64,
    /// Staleness requires the repeated reading to also sit outside this
    /// fraction of the target (legitimately quantized readings repeat
    /// *near* the target and must not trigger the hold).
    pub stale_error_frac: f64,
    /// Exact repeats *while the actuator moved between readings* before
    /// the sensor counts as frozen regardless of how close the repeated
    /// value sits to the target. A plant whose setting changes should
    /// not return bit-identical measurements; repeats at a *held*
    /// setting (a converged controller) never advance this counter, so
    /// legitimate steady states cannot trip it. On a hard-goal channel
    /// the detection escalates straight to the profiled-safe fallback —
    /// an undetected near-target freeze otherwise blinds the controller
    /// exactly when a load burst needs it.
    pub actuated_stale_epochs: u64,
    /// Consecutive worsening violating epochs (hard goals) before the
    /// channel degrades to its static fallback.
    pub divergence_streak: u32,
    /// Fallback dwell time in epochs before the controller re-engages.
    pub cooldown_epochs: u64,
    /// Whether to back-calculate the integrator on actuator saturation.
    pub anti_windup: bool,
    /// Whether a degraded channel (watchdog revert or fallback hold) may
    /// also shed *already-admitted* work: the plane raises a shed
    /// notification ([`ControlPlane::take_plant_shed`](crate::ControlPlane::take_plant_shed))
    /// asking the plant to trim queue items admitted before the guard
    /// engaged down to the in-force bound, and clamps that bound to the
    /// safe side of the channel's profiled-safe fallback (a watchdog's
    /// reverted setting was only ever safe against the load it was
    /// decided under). Without this, the admission filter only bounds
    /// what the controller admits *next* — work that entered the queue
    /// under a doomed setting stays there, which is how TWIN/HB2149
    /// could still violate a hard goal under chaos. On by default (the
    /// initial opt-in default was flipped once its chaos-report
    /// trajectory change was worth the baseline refresh); pass
    /// `shed_admitted(false)` for plants whose admitted work must never
    /// be dropped.
    pub shed_admitted: bool,
    /// Adaptive channels only: when the online estimator's confidence
    /// falls below this floor, the channel degrades to its profiled-safe
    /// fallback (one divergence-style cooldown) and re-engages once the
    /// estimator recovers above the floor — the safety net for model
    /// drift. `0.0` (the default) never fires, so frozen-model planes
    /// are untouched bit for bit.
    pub confidence_floor: f64,
    /// Sensor-voting window: when the admission filter rejects a
    /// delivered reading (non-finite or spike) and at least this many
    /// readings have been admitted since the last gap, the guard
    /// substitutes their median instead of marking the epoch missed —
    /// the controller stays fed through corruption bursts rather than
    /// going blind into the watchdog. `0` (the default) disables voting,
    /// leaving existing single-fault chaos trajectories untouched bit
    /// for bit. Recorded as [`GuardSet::VOTED`] (alongside
    /// [`GuardSet::REJECTED`] for the raw reading).
    pub vote_window: usize,
    /// Re-engage backoff cap, in doublings: every fallback entry after
    /// the first doubles the cooldown dwell (jitter-free — the schedule
    /// is a pure function of the entry count), saturating after this
    /// many doublings; a clean stretch of [`cooldown_epochs`](Self::cooldown_epochs)
    /// healthy engaged epochs resets the schedule to the base cooldown.
    /// `0` (the default) disables backoff: every entry dwells exactly
    /// `cooldown_epochs`, as before.
    pub reengage_backoff: u32,
    fallbacks: Vec<(String, f64)>,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            watchdog_epochs: 5,
            spike_window: 5,
            spike_ratio: 8.0,
            stale_epochs: 8,
            stale_error_frac: 0.05,
            actuated_stale_epochs: 4,
            divergence_streak: 3,
            cooldown_epochs: 60,
            anti_windup: true,
            shed_admitted: true,
            confidence_floor: 0.0,
            vote_window: 0,
            reengage_backoff: 0,
            fallbacks: Vec::new(),
        }
    }
}

impl GuardPolicy {
    /// The default policy (see field docs for the defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the watchdog threshold (clamped ≥ 1).
    #[must_use]
    pub fn watchdog_epochs(mut self, m: u64) -> Self {
        self.watchdog_epochs = m.max(1);
        self
    }

    /// Configures the median spike filter.
    #[must_use]
    pub fn spike_filter(mut self, window: usize, ratio: f64) -> Self {
        self.spike_window = window.max(1);
        self.spike_ratio = ratio.max(1.0);
        self
    }

    /// Configures stale-repeat detection: `epochs` exact repeats while
    /// the reading sits more than `error_frac` of the target away from
    /// it.
    #[must_use]
    pub fn stale_detection(mut self, epochs: u64, error_frac: f64) -> Self {
        self.stale_epochs = epochs.max(2);
        self.stale_error_frac = error_frac.max(0.0);
        self
    }

    /// Sets the actuated-staleness threshold: exact repeats under
    /// actuator movement before the sensor counts as frozen (clamped
    /// ≥ 2).
    #[must_use]
    pub fn actuated_stale_epochs(mut self, epochs: u64) -> Self {
        self.actuated_stale_epochs = epochs.max(2);
        self
    }

    /// Configures the divergence detector: `streak` consecutive
    /// worsening violations trigger a fallback lasting `cooldown`
    /// epochs.
    #[must_use]
    pub fn divergence(mut self, streak: u32, cooldown: u64) -> Self {
        self.divergence_streak = streak.max(1);
        self.cooldown_epochs = cooldown.max(1);
        self
    }

    /// Enables or disables integrator anti-windup on saturation.
    #[must_use]
    pub fn anti_windup(mut self, on: bool) -> Self {
        self.anti_windup = on;
        self
    }

    /// Enables shedding of already-admitted work while a channel is
    /// degraded (watchdog revert or fallback hold): the plane raises a
    /// per-channel shed notification that [`Plant::shed`](crate::Plant::shed)
    /// consumes. See the [`GuardPolicy::shed_admitted`] field docs.
    #[must_use]
    pub fn shed_admitted(mut self, on: bool) -> Self {
        self.shed_admitted = on;
        self
    }

    /// Sets the confidence floor below which an adaptive channel
    /// degrades to its profiled-safe fallback (clamped to `[0, 1)`; see
    /// the [`GuardPolicy::confidence_floor`] field docs).
    #[must_use]
    pub fn confidence_floor(mut self, floor: f64) -> Self {
        self.confidence_floor = if floor.is_finite() {
            floor.clamp(0.0, 0.999)
        } else {
            0.0
        };
        self
    }

    /// Arms the sensor-voting filter: rejected readings are replaced by
    /// the median of the last `window` admitted ones once the window has
    /// warmed up (see the [`GuardPolicy::vote_window`] field docs;
    /// `0` disables, larger windows are clamped to 33).
    #[must_use]
    pub fn sensor_vote(mut self, window: usize) -> Self {
        self.vote_window = window.min(33);
        self
    }

    /// Arms deterministic re-engage backoff with the given doubling cap
    /// (see the [`GuardPolicy::reengage_backoff`] field docs; `0`
    /// disables, caps beyond 32 are clamped — `2³²` cooldowns outlive
    /// any run).
    #[must_use]
    pub fn reengage_backoff(mut self, doublings: u32) -> Self {
        self.reengage_backoff = doublings.min(32);
        self
    }

    /// The compound-campaign hardening bundle: arms sensor voting
    /// ([`CAMPAIGN_VOTE_WINDOW`]) and re-engage backoff
    /// ([`CAMPAIGN_BACKOFF_DOUBLINGS`]) on top of whatever the policy
    /// already configures, leaving either untouched if a scenario armed
    /// its own value. Scenario crates call this when building the guard
    /// for a [`Campaign`](crate::Campaign) run.
    #[must_use]
    pub fn campaign_hardened(mut self) -> Self {
        if self.vote_window == 0 {
            self.vote_window = CAMPAIGN_VOTE_WINDOW;
        }
        if self.reengage_backoff == 0 {
            self.reengage_backoff = CAMPAIGN_BACKOFF_DOUBLINGS;
        }
        self
    }

    /// Declares the profiled-safe static fallback for one channel, in
    /// controller-variable space (the plane maps it through the
    /// transducer for indirect configurations). Channels without a
    /// declared fallback fall back to their initial setting.
    #[must_use]
    pub fn fallback_setting(mut self, channel: impl Into<String>, setting: f64) -> Self {
        self.fallbacks.push((channel.into(), setting));
        self
    }

    /// The declared fallback for a channel, if any.
    pub fn fallback_for(&self, channel: &str) -> Option<f64> {
        self.fallbacks
            .iter()
            .find(|(name, _)| name == channel)
            .map(|(_, v)| *v)
    }
}

/// Everything needed to arm a plane's chaos mode: the injector seed, the
/// fault plan, and the guard tuning. `(seed, plan)` fully determines the
/// injected faults, so a chaos run is replayable from its spec.
///
/// # Example
///
/// ```
/// use smartconf_runtime::{ChaosSpec, FaultClass, GuardPolicy};
///
/// let spec = ChaosSpec::standard(FaultClass::SensorDropout, 42)
///     .with_guard(GuardPolicy::new().watchdog_epochs(3));
/// assert_eq!(spec.seed, 42);
/// assert!(!spec.plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Injector seed (derive from [`shard_seed`](crate::shard_seed)
    /// material so fleet shards stay deterministic).
    pub seed: u64,
    /// The faults to inject.
    pub plan: FaultPlan,
    /// The guard tuning.
    pub guard: GuardPolicy,
}

impl ChaosSpec {
    /// A spec from an explicit plan with the default guards.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        ChaosSpec {
            seed,
            plan,
            guard: GuardPolicy::default(),
        }
    }

    /// The canonical spec for one fault class of the chaos sweep.
    pub fn standard(class: crate::FaultClass, seed: u64) -> Self {
        Self::new(seed, class.standard_plan())
    }

    /// The canonical spec for one compound-fault campaign: the
    /// campaign's composed plan with the default guards — scenario
    /// crates then swap in their tuned policy via
    /// [`with_guard`](Self::with_guard), typically after
    /// [`GuardPolicy::campaign_hardened`].
    pub fn campaign(campaign: crate::Campaign, seed: u64) -> Self {
        Self::new(seed, campaign.plan())
    }

    /// Replaces the guard policy.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardPolicy) -> Self {
        self.guard = guard;
        self
    }
}

/// Whether a channel's controller is live or degraded to its fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum GuardMode {
    /// Controller in charge.
    Engaged,
    /// Holding the static fallback until the given epoch.
    Fallback {
        /// First epoch at which the controller may re-engage.
        until: u64,
    },
}

/// Per-channel guard state (plane-internal).
#[derive(Debug)]
pub(crate) struct ChannelGuard {
    pub filter: MedianFilter,
    /// Consecutive epochs without an admitted reading.
    pub missed: u64,
    /// Last reading the (possibly faulty) sensor delivered.
    pub last_raw: Option<f64>,
    /// Length of the current exact-repeat run.
    pub stale_run: u64,
    /// Exact repeats observed while the in-force setting moved between
    /// readings (see [`GuardPolicy::actuated_stale_epochs`]).
    pub actuated_stale: u64,
    /// The in-force setting of the previous epoch, for actuated-stale
    /// movement detection.
    pub prev_in_force: f64,
    /// Whether the in-force setting changed on the previous epoch.
    pub setting_moved: bool,
    /// Consecutive admitted epochs with a worsening violation.
    pub worsening: u32,
    /// |error| of the previous violating epoch.
    pub prev_violation: f64,
    pub mode: GuardMode,
    /// Profiled-safe fallback, controller space.
    pub fallback: f64,
    /// Initial setting, controller space (restart target).
    pub initial: f64,
    /// Last setting decided while the guard saw a healthy channel.
    pub last_safe: f64,
    /// Whether `last_safe` was recorded under the current goal. A
    /// [`set_goal`](crate::ControlPlane::set_goal) retarget clears this:
    /// until a healthy epoch under the new goal, *any* missed epoch
    /// reverts immediately (holding the old setting has no safety
    /// evidence behind it).
    pub evidence_fresh: bool,
    /// Setting actually in force at the plant, controller space
    /// (diverges from the controller's setting under actuator lag).
    pub in_force: f64,
    /// Lagged decisions waiting to reach the plant: `(due epoch, setting)`.
    pub pending: VecDeque<(u64, f64)>,
    /// The most recent epoch this channel decided (for out-of-band guard
    /// actions that happen between epochs, e.g. a goal retarget).
    pub last_epoch: u64,
    /// The scenario's own goal target (restored when a flap window ends).
    pub base_target: f64,
    /// Whether a goal flap is currently applied.
    pub flapped: bool,
    /// Raised by a restart until the embedder polls it.
    pub reprofile: bool,
    /// Raised by a restart until the embedder polls it (plant-side reset).
    pub plant_restart: bool,
    /// Raised while a degraded channel asks the plant to shed
    /// already-admitted work (see [`GuardPolicy::shed_admitted`]); held
    /// until the embedder polls
    /// [`take_plant_shed`](crate::ControlPlane::take_plant_shed).
    pub plant_shed: bool,
    /// Lifetime restart count.
    pub restarts: u64,
    /// Recently *admitted* readings feeding the sensor-voting median
    /// (see [`GuardPolicy::vote_window`]); bounded at the window length.
    pub votes: VecDeque<f64>,
    /// Current position on the re-engage backoff schedule: the next
    /// fallback entry dwells `cooldown_epochs × 2^min(backoff_exp, cap)`.
    pub backoff_exp: u32,
    /// Consecutive healthy engaged epochs since the last fallback entry;
    /// reaching [`GuardPolicy::cooldown_epochs`] resets `backoff_exp`.
    pub clean_streak: u64,
}

impl ChannelGuard {
    pub(crate) fn new(policy: &GuardPolicy, fallback: f64, initial: f64, base_target: f64) -> Self {
        ChannelGuard {
            filter: MedianFilter::new(policy.spike_window, policy.spike_ratio),
            missed: 0,
            last_raw: None,
            stale_run: 0,
            actuated_stale: 0,
            prev_in_force: initial,
            setting_moved: false,
            worsening: 0,
            prev_violation: 0.0,
            mode: GuardMode::Engaged,
            fallback,
            initial,
            last_safe: initial,
            evidence_fresh: true,
            in_force: initial,
            pending: VecDeque::new(),
            last_epoch: 0,
            base_target,
            flapped: false,
            reprofile: false,
            plant_restart: false,
            plant_shed: false,
            restarts: 0,
            votes: VecDeque::new(),
            backoff_exp: 0,
            clean_streak: 0,
        }
    }

    /// Clears accumulated run state after a plant restart and raises the
    /// re-profiling request (frozen-model channels cannot relearn in
    /// place). The fallback, initial, and base-target configuration
    /// survive — they describe the scenario, not the run.
    pub(crate) fn reset_after_restart(&mut self) {
        self.reset_run_state();
        self.reprofile = true;
    }

    /// Clears accumulated run state after a plant restart *without*
    /// raising the re-profiling request: an adaptive channel resets its
    /// estimator covariance and relearns the post-restart plant in place.
    pub(crate) fn reset_after_restart_in_place(&mut self) {
        self.reset_run_state();
    }

    fn reset_run_state(&mut self) {
        self.filter.clear();
        self.missed = 0;
        self.last_raw = None;
        self.stale_run = 0;
        self.actuated_stale = 0;
        self.prev_in_force = self.initial;
        self.setting_moved = false;
        self.worsening = 0;
        self.prev_violation = 0.0;
        self.mode = GuardMode::Engaged;
        self.last_safe = self.initial;
        self.evidence_fresh = true;
        self.in_force = self.initial;
        self.pending.clear();
        self.plant_restart = true;
        self.plant_shed = false; // the restart itself empties the plant's queues
        self.restarts += 1;
        self.votes.clear();
        self.backoff_exp = 0;
        self.clean_streak = 0;
    }

    /// Records a genuinely admitted reading into the voting window
    /// (no-op when voting is disabled).
    pub(crate) fn push_vote(&mut self, v: f64, window: usize) {
        if window == 0 {
            return;
        }
        if self.votes.len() == window {
            self.votes.pop_front();
        }
        self.votes.push_back(v);
    }

    /// The voting median — `Some` only once the window has fully warmed
    /// up (a partial window would let one early outlier speak for the
    /// channel). Upper median for even windows.
    pub(crate) fn vote_median(&self, window: usize) -> Option<f64> {
        if window == 0 || self.votes.len() < window {
            return None;
        }
        let mut sorted: Vec<f64> = self.votes.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        Some(sorted[sorted.len() / 2])
    }

    /// The cooldown dwell for a fallback entered *now*, advancing the
    /// deterministic backoff schedule: the returned dwell reflects the
    /// entries so far, then the exponent steps (saturating at the
    /// policy's cap) so the *next* entry dwells twice as long. With
    /// backoff disabled this is exactly `cooldown_epochs`, bit for bit.
    ///
    /// Entering fallback also invalidates the sensor-vote window: the
    /// hold actively drains the plant, so pre-entry consensus no longer
    /// describes it at re-engage (acting on a drained-era median there
    /// reopens the actuator against a picture that is minutes stale).
    pub(crate) fn enter_cooldown(&mut self, policy: &GuardPolicy) -> u64 {
        let shift = self.backoff_exp.min(policy.reengage_backoff).min(63);
        let dwell = policy.cooldown_epochs.saturating_mul(1u64 << shift);
        if policy.reengage_backoff > 0 && self.backoff_exp < policy.reengage_backoff {
            self.backoff_exp += 1;
        }
        self.clean_streak = 0;
        self.votes.clear();
        dwell
    }

    /// Tracks the exact-repeat run of delivered readings. Returns
    /// whether this reading exactly repeated the previous one. Repeats
    /// observed while the actuator moved between readings additionally
    /// advance `actuated_stale`; repeats at a held setting leave it
    /// unchanged (they carry no information either way).
    pub(crate) fn note_delivered(&mut self, v: f64) -> bool {
        if self.last_raw == Some(v) {
            self.stale_run += 1;
            if self.setting_moved {
                self.actuated_stale += 1;
            }
            true
        } else {
            self.stale_run = 0;
            self.actuated_stale = 0;
            self.last_raw = Some(v);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultClass, FaultInjector};

    #[test]
    fn guard_set_bits() {
        let mut g = GuardSet::default();
        assert!(g.is_empty());
        g.insert(GuardSet::WATCHDOG);
        g.insert(GuardSet::FALLBACK);
        assert!(g.contains(GuardSet::WATCHDOG));
        assert!(g.contains(GuardSet::FALLBACK));
        assert!(!g.contains(GuardSet::REENGAGE));
    }

    #[test]
    fn policy_builder_clamps() {
        let p = GuardPolicy::new()
            .watchdog_epochs(0)
            .spike_filter(0, 0.5)
            .stale_detection(0, -1.0)
            .divergence(0, 0);
        assert_eq!(p.watchdog_epochs, 1);
        assert_eq!(p.spike_window, 1);
        assert_eq!(p.spike_ratio, 1.0);
        assert_eq!(p.stale_epochs, 2);
        assert_eq!(p.stale_error_frac, 0.0);
        assert_eq!(p.divergence_streak, 1);
        assert_eq!(p.cooldown_epochs, 1);
    }

    #[test]
    fn policy_fallback_lookup() {
        let p = GuardPolicy::new()
            .fallback_setting("a", 40.0)
            .fallback_setting("b", 100.0);
        assert_eq!(p.fallback_for("a"), Some(40.0));
        assert_eq!(p.fallback_for("b"), Some(100.0));
        assert_eq!(p.fallback_for("c"), None);
    }

    #[test]
    fn chaos_spec_standard_replayable() {
        let a = ChaosSpec::standard(FaultClass::Corruption, 7);
        let b = ChaosSpec::standard(FaultClass::Corruption, 7);
        assert_eq!(a, b);
        let inj_a = FaultInjector::new(a.seed, a.plan.clone());
        let inj_b = FaultInjector::new(b.seed, b.plan.clone());
        for epoch in 0..500 {
            assert_eq!(inj_a.at("x", 0, epoch), inj_b.at("x", 0, epoch));
        }
    }

    #[test]
    fn stale_run_tracking() {
        let mut g = ChannelGuard::new(&GuardPolicy::default(), 1.0, 1.0, 10.0);
        g.note_delivered(5.0);
        assert_eq!(g.stale_run, 0);
        g.note_delivered(5.0);
        g.note_delivered(5.0);
        assert_eq!(g.stale_run, 2);
        g.note_delivered(6.0);
        assert_eq!(g.stale_run, 0);
    }

    #[test]
    fn restart_reset_preserves_configuration() {
        let mut g = ChannelGuard::new(&GuardPolicy::default(), 40.0, 80.0, 495.0);
        g.missed = 3;
        g.mode = GuardMode::Fallback { until: 99 };
        g.pending.push_back((5, 1.0));
        g.reset_after_restart();
        assert_eq!(g.missed, 0);
        assert_eq!(g.mode, GuardMode::Engaged);
        assert!(g.pending.is_empty());
        assert!(g.reprofile && g.plant_restart);
        assert_eq!(g.restarts, 1);
        assert_eq!(g.fallback, 40.0);
        assert_eq!(g.in_force, 80.0);
    }

    #[test]
    fn in_place_restart_reset_skips_reprofile() {
        let mut g = ChannelGuard::new(&GuardPolicy::default(), 40.0, 80.0, 495.0);
        g.missed = 3;
        g.mode = GuardMode::Fallback { until: 99 };
        g.reset_after_restart_in_place();
        assert_eq!(g.missed, 0);
        assert_eq!(g.mode, GuardMode::Engaged);
        assert!(
            !g.reprofile,
            "adaptive restart must not request re-profiling"
        );
        assert!(g.plant_restart);
        assert_eq!(g.restarts, 1);
    }

    #[test]
    fn confidence_floor_clamps() {
        assert_eq!(
            GuardPolicy::new().confidence_floor(0.5).confidence_floor,
            0.5
        );
        assert_eq!(
            GuardPolicy::new().confidence_floor(2.0).confidence_floor,
            0.999
        );
        assert_eq!(
            GuardPolicy::new().confidence_floor(-1.0).confidence_floor,
            0.0
        );
        assert_eq!(
            GuardPolicy::new()
                .confidence_floor(f64::NAN)
                .confidence_floor,
            0.0
        );
        // The default never fires.
        assert_eq!(GuardPolicy::default().confidence_floor, 0.0);
    }

    #[test]
    fn campaign_hardening_arms_vote_and_backoff() {
        let p = GuardPolicy::new().campaign_hardened();
        assert_eq!(p.vote_window, CAMPAIGN_VOTE_WINDOW);
        assert_eq!(p.reengage_backoff, CAMPAIGN_BACKOFF_DOUBLINGS);
        // Scenario-armed values survive the bundle.
        let p = GuardPolicy::new()
            .sensor_vote(7)
            .reengage_backoff(2)
            .campaign_hardened();
        assert_eq!(p.vote_window, 7);
        assert_eq!(p.reengage_backoff, 2);
        // Both are off by default — existing chaos runs are untouched.
        assert_eq!(GuardPolicy::default().vote_window, 0);
        assert_eq!(GuardPolicy::default().reengage_backoff, 0);
    }

    #[test]
    fn vote_median_needs_a_full_window() {
        let policy = GuardPolicy::new().sensor_vote(3);
        let mut g = ChannelGuard::new(&policy, 1.0, 1.0, 10.0);
        g.push_vote(5.0, policy.vote_window);
        g.push_vote(9.0, policy.vote_window);
        assert_eq!(g.vote_median(policy.vote_window), None);
        g.push_vote(7.0, policy.vote_window);
        assert_eq!(g.vote_median(policy.vote_window), Some(7.0));
        // The window is bounded: a fourth push evicts the oldest.
        g.push_vote(100.0, policy.vote_window);
        assert_eq!(g.votes.len(), 3);
        assert_eq!(g.vote_median(policy.vote_window), Some(9.0));
        // Disabled voting never yields a median and never buffers.
        let mut off = ChannelGuard::new(&GuardPolicy::default(), 1.0, 1.0, 10.0);
        off.push_vote(5.0, 0);
        assert!(off.votes.is_empty());
        assert_eq!(off.vote_median(0), None);
    }

    #[test]
    fn backoff_schedule_doubles_caps_and_resets() {
        let policy = GuardPolicy::new().divergence(3, 10).reengage_backoff(2);
        let mut g = ChannelGuard::new(&policy, 1.0, 1.0, 10.0);
        assert_eq!(g.enter_cooldown(&policy), 10);
        assert_eq!(g.enter_cooldown(&policy), 20);
        assert_eq!(g.enter_cooldown(&policy), 40);
        // Saturates at the cap: 2 doublings -> 4x, forever after.
        assert_eq!(g.enter_cooldown(&policy), 40);
        assert_eq!(g.backoff_exp, 2);
        // A clean recovery resets the schedule to the base cooldown.
        g.backoff_exp = 0;
        assert_eq!(g.enter_cooldown(&policy), 10);
    }

    #[test]
    fn backoff_disabled_is_plain_cooldown() {
        let policy = GuardPolicy::new().divergence(3, 60);
        let mut g = ChannelGuard::new(&policy, 1.0, 1.0, 10.0);
        for _ in 0..5 {
            assert_eq!(g.enter_cooldown(&policy), 60);
        }
        assert_eq!(g.backoff_exp, 0, "disabled backoff must not advance");
    }

    #[test]
    fn fallback_entry_invalidates_the_vote_window() {
        // Consensus gathered before a fallback hold describes a plant
        // the hold then actively drains; re-engaging on it would reopen
        // the actuator against a stale picture. Every entry flushes it.
        let policy = GuardPolicy::new().sensor_vote(3).divergence(3, 10);
        let mut g = ChannelGuard::new(&policy, 1.0, 1.0, 10.0);
        for v in [5.0, 6.0, 7.0] {
            g.push_vote(v, policy.vote_window);
        }
        assert_eq!(g.vote_median(policy.vote_window), Some(6.0));
        g.enter_cooldown(&policy);
        assert!(g.votes.is_empty());
        assert_eq!(g.vote_median(policy.vote_window), None);
    }

    #[test]
    fn restart_clears_votes_and_backoff() {
        let policy = GuardPolicy::new().sensor_vote(3).reengage_backoff(4);
        let mut g = ChannelGuard::new(&policy, 40.0, 80.0, 495.0);
        g.push_vote(5.0, policy.vote_window);
        g.enter_cooldown(&policy);
        g.clean_streak = 7;
        g.reset_after_restart();
        assert!(g.votes.is_empty());
        assert_eq!(g.backoff_exp, 0);
        assert_eq!(g.clean_streak, 0);
    }

    #[test]
    fn chaos_spec_campaign_replayable() {
        let a = ChaosSpec::campaign(crate::Campaign::RestartUnderCorruption, 7);
        let b = ChaosSpec::campaign(crate::Campaign::RestartUnderCorruption, 7);
        assert_eq!(a, b);
        assert!(a.plan.windows().len() >= 2, "campaigns compose windows");
    }
}
