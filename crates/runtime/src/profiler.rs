//! Shared profiling schedule: the paper's 4-settings × N-measurements loop.
//!
//! Before synthesis, every PerfConf is profiled by holding the
//! configuration at a handful of settings and measuring the performance
//! metric repeatedly (paper §6.1: 4 settings, 10 measurements each).
//! PR 1 left each scenario crate re-implementing that loop by hand; the
//! [`Profiler`] here owns it once. A scenario declares *what* to profile
//! (a [`ProfileSchedule`]: which settings, how many measurements, how to
//! sample them out of the recorded series) and supplies *how* to run one
//! profiling workload (a closure from `(setting, seed)` to a
//! [`TimeSeries`]); the profiler drives the schedule and assembles the
//! grouped [`ProfileSet`] that controller synthesis consumes.

use smartconf_core::ProfileSet;
use smartconf_metrics::TimeSeries;

use crate::{ControlPlane, Decider, Plant};

/// How measurements are extracted from one profiling run's series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Sample the series on a fixed time grid: measurement `k` is the
    /// zero-order-hold value at `warmup_us + k · period_us`. Used by
    /// scenarios whose metric is a continuously maintained gauge
    /// (resident memory, queue depth).
    Grid {
        /// Time of the first sample, microseconds.
        warmup_us: u64,
        /// Spacing between samples, microseconds.
        period_us: u64,
    },
    /// Take the first N recorded points verbatim. Used by scenarios whose
    /// metric is event-triggered (block write durations, RPC latencies)
    /// and therefore already arrives as discrete measurements.
    FirstEvents,
}

/// A declarative profiling schedule: which settings to hold, how many
/// measurements to take at each, and how to sample them.
///
/// # Example
///
/// ```
/// use smartconf_runtime::ProfileSchedule;
///
/// // The paper's §6.1 schedule: 4 settings × 10 measurements.
/// let schedule = ProfileSchedule::first_events(vec![40.0, 80.0, 120.0, 160.0], 10);
/// assert_eq!(schedule.settings().len(), 4);
/// assert_eq!(schedule.measurements(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSchedule {
    settings: Vec<f64>,
    measurements: usize,
    mode: SampleMode,
}

impl ProfileSchedule {
    /// A schedule sampling each setting's series on a fixed time grid.
    pub fn grid(settings: Vec<f64>, measurements: usize, warmup_us: u64, period_us: u64) -> Self {
        ProfileSchedule {
            settings,
            measurements,
            mode: SampleMode::Grid {
                warmup_us,
                period_us,
            },
        }
    }

    /// A schedule taking the first `measurements` recorded points of each
    /// setting's series.
    pub fn first_events(settings: Vec<f64>, measurements: usize) -> Self {
        ProfileSchedule {
            settings,
            measurements,
            mode: SampleMode::FirstEvents,
        }
    }

    /// The settings at which the configuration is held, in run order.
    pub fn settings(&self) -> &[f64] {
        &self.settings
    }

    /// Measurements taken per setting.
    pub fn measurements(&self) -> usize {
        self.measurements
    }

    /// How measurements are extracted from each run's series.
    pub fn mode(&self) -> SampleMode {
        self.mode
    }
}

/// Drives a [`ProfileSchedule`] through per-setting profiling runs and
/// collects the grouped samples.
///
/// Each setting `i` runs with the derived seed `seed + i + 1`
/// (wrapping), matching the per-setting reseeding the scenario crates
/// used before this loop was shared: distinct settings see distinct
/// workload noise, while the whole profile stays a pure function of the
/// base seed.
///
/// # Example
///
/// ```
/// use smartconf_metrics::TimeSeries;
/// use smartconf_runtime::{ProfileSchedule, Profiler};
///
/// // metric ≈ 2·setting, sampled on a 1-second grid after 10 s warmup.
/// let schedule = ProfileSchedule::grid(vec![40.0, 80.0, 120.0, 160.0], 10, 10_000_000, 1_000_000);
/// let profile = Profiler::new(schedule).collect(42, |setting, seed| {
///     let mut ts = TimeSeries::new("metric");
///     for k in 0..30 {
///         let noise = ((seed + k) % 3) as f64;
///         ts.push(k * 1_000_000, 2.0 * setting + noise);
///     }
///     ts
/// });
/// assert_eq!(profile.num_settings(), 4);
/// assert_eq!(profile.len(), 40); // 4 settings × 10 measurements
/// let fit = profile.fit().unwrap();
/// assert!((fit.alpha() - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Profiler {
    schedule: ProfileSchedule,
}

impl Profiler {
    /// Creates a profiler for the given schedule.
    pub fn new(schedule: ProfileSchedule) -> Self {
        Profiler { schedule }
    }

    /// The schedule this profiler drives.
    pub fn schedule(&self) -> &ProfileSchedule {
        &self.schedule
    }

    /// Runs one profiling workload per declared setting and extracts the
    /// scheduled measurements from each run's series.
    ///
    /// `run(setting, seed)` must execute one profiling run with the
    /// configuration held at `setting` and return the recorded metric
    /// series. Non-finite samples are dropped by [`ProfileSet::add`];
    /// grid samples before the series starts are skipped.
    pub fn collect(&self, seed: u64, mut run: impl FnMut(f64, u64) -> TimeSeries) -> ProfileSet {
        let mut profile = ProfileSet::new();
        for (i, &setting) in self.schedule.settings.iter().enumerate() {
            let series = run(setting, seed.wrapping_add(i as u64 + 1));
            self.sample_into(&mut profile, setting, &series);
        }
        profile
    }

    /// Like [`Profiler::collect`], but drives a [`Plant`] directly: each
    /// setting gets a fresh plant from `make(setting, seed)`, a
    /// single-channel static [`ControlPlane`] runs it to completion, and
    /// the sensed-metric trajectory is sampled per the schedule.
    pub fn collect_plant<P: Plant>(
        &self,
        seed: u64,
        mut make: impl FnMut(f64, u64) -> P,
    ) -> ProfileSet {
        self.collect(seed, |setting, s| {
            let (mut plane, _chan) = ControlPlane::single("profile", Decider::Static(setting));
            let mut plant = make(setting, s);
            plane.run(&mut plant);
            plane.log().measured_series("profile")
        })
    }

    fn sample_into(&self, profile: &mut ProfileSet, setting: f64, series: &TimeSeries) {
        match self.schedule.mode {
            SampleMode::Grid {
                warmup_us,
                period_us,
            } => {
                for k in 0..self.schedule.measurements as u64 {
                    if let Some(v) = series.value_at(warmup_us + k * period_us) {
                        profile.add(setting, v);
                    }
                }
            }
            SampleMode::FirstEvents => {
                for p in series.points().iter().take(self.schedule.measurements) {
                    profile.add(setting, p.value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_series(setting: f64, seed: u64, points: u64) -> TimeSeries {
        let mut ts = TimeSeries::new("m");
        for k in 0..points {
            let noise = ((seed + k) % 5) as f64 * 0.1;
            ts.push(k * 1_000_000, 3.0 * setting + noise);
        }
        ts
    }

    #[test]
    fn grid_takes_exactly_the_scheduled_measurements() {
        let schedule = ProfileSchedule::grid(vec![10.0, 20.0, 30.0, 40.0], 10, 5_000_000, 500_000);
        let profile = Profiler::new(schedule).collect(7, |s, seed| linear_series(s, seed, 60));
        assert_eq!(profile.num_settings(), 4);
        assert_eq!(profile.len(), 40);
        let fit = profile.fit().unwrap();
        assert!((fit.alpha() - 3.0).abs() < 0.05, "alpha {}", fit.alpha());
    }

    #[test]
    fn first_events_truncates_to_measurement_count() {
        let schedule = ProfileSchedule::first_events(vec![10.0, 20.0], 8);
        let profile = Profiler::new(schedule).collect(1, |s, seed| linear_series(s, seed, 30));
        assert_eq!(profile.len(), 16);
    }

    #[test]
    fn grid_before_series_start_is_skipped_and_zoh_holds_past_the_end() {
        // Matching the old hand-rolled loops, which used `value_at`:
        // samples before the first point are skipped; samples after the
        // last point hold its value (zero-order hold).
        let schedule = ProfileSchedule::grid(vec![10.0], 10, 0, 1_000_000);
        let profile = Profiler::new(schedule).collect(0, |s, seed| {
            let mut ts = TimeSeries::new("m");
            let full = linear_series(s, seed, 4);
            for p in &full.points()[1..] {
                ts.push(p.t_us, p.value);
            }
            ts
        });
        // Grid point 0 precedes the series (skipped); points 1..10 resolve
        // (the tail held at the last sample).
        assert_eq!(profile.len(), 9);
    }

    #[test]
    fn per_setting_seeds_match_the_historical_derivation() {
        let mut seen = Vec::new();
        let schedule = ProfileSchedule::first_events(vec![1.0, 2.0, 3.0], 1);
        Profiler::new(schedule).collect(100, |s, seed| {
            seen.push((s, seed));
            linear_series(s, seed, 2)
        });
        assert_eq!(seen, vec![(1.0, 101), (2.0, 102), (3.0, 103)]);
    }

    proptest::proptest! {
        /// Satellite property: under both sampling modes, every declared
        /// setting contributes exactly its scheduled measurement count
        /// (when the run's series covers the schedule, as real runs do).
        #[test]
        fn every_setting_gets_exactly_its_measurement_count(
            n_settings in 1usize..6,
            measurements in 1usize..30,
            grid in proptest::bool::ANY,
            seed in 0u64..u64::MAX,
        ) {
            let settings: Vec<f64> = (1..=n_settings).map(|i| i as f64 * 12.5).collect();
            let schedule = if grid {
                // 1 s warmup + 0.5 s grid stays inside the 64 s series.
                ProfileSchedule::grid(settings.clone(), measurements, 1_000_000, 500_000)
            } else {
                ProfileSchedule::first_events(settings.clone(), measurements)
            };
            let profile = Profiler::new(schedule).collect(seed, |s, sd| linear_series(s, sd, 64));
            proptest::prop_assert_eq!(profile.num_settings(), n_settings);
            proptest::prop_assert_eq!(profile.len(), n_settings * measurements);
            for (setting, stats) in profile.groups() {
                proptest::prop_assert!(settings.contains(&setting));
                proptest::prop_assert_eq!(stats.count(), measurements as u64);
            }
        }
    }

    #[test]
    fn collect_plant_drives_a_static_plane() {
        use crate::{ChannelId, Sensed};

        struct Gauge {
            setting: f64,
            t_us: u64,
            epochs: u64,
        }
        impl Plant for Gauge {
            fn now_us(&self) -> u64 {
                self.t_us
            }
            fn sense(&mut self, _chan: ChannelId) -> Sensed {
                Sensed::direct(2.0 * self.setting)
            }
            fn apply(&mut self, _chan: ChannelId, setting: f64) {
                self.setting = setting;
            }
            fn advance(&mut self) -> bool {
                self.t_us += 1_000_000;
                self.epochs += 1;
                self.epochs < 20
            }
        }

        let schedule = ProfileSchedule::grid(vec![5.0, 10.0], 4, 2_000_000, 1_000_000);
        let profile = Profiler::new(schedule).collect_plant(9, |setting, _seed| Gauge {
            setting,
            t_us: 0,
            epochs: 0,
        });
        assert_eq!(profile.len(), 8);
        let fit = profile.fit().unwrap();
        assert!((fit.alpha() - 2.0).abs() < 1e-9);
    }
}
