//! The plant abstraction: the system under control.
//!
//! A plant is anything with a clock, a sensor per control channel, and
//! an actuator per control channel. The discrete-event simulators in the
//! scenario crates implement [`Plant`] on their mechanism state and call
//! [`ControlPlane::epoch_for`](crate::ControlPlane::epoch_for) at the
//! code sites where the configuration takes effect (the paper invokes
//! SmartConf "at every point where the software would read the
//! configuration"); simpler plants implement [`Plant::advance`] and let
//! [`ControlPlane::run`](crate::ControlPlane::run) own the whole loop.

/// Identifies one control channel of a [`ControlPlane`](crate::ControlPlane).
///
/// Returned by
/// [`ControlPlaneBuilder::channel`](crate::ControlPlaneBuilder::channel);
/// cheap to copy into plant state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// The channel's index (also [`EpochEvent::channel`](crate::EpochEvent::channel)).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One sensor reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensed {
    /// The controlled metric (what the goal constrains).
    pub measured: f64,
    /// The deputy variable's current value, for indirectly-acting
    /// configurations (paper §5.3). `None` for direct channels.
    pub deputy: Option<f64>,
}

impl Sensed {
    /// A direct measurement with no deputy.
    pub fn direct(measured: f64) -> Self {
        Sensed {
            measured,
            deputy: None,
        }
    }

    /// A measurement paired with the deputy's observed value.
    pub fn with_deputy(measured: f64, deputy: f64) -> Self {
        Sensed {
            measured,
            deputy: Some(deputy),
        }
    }
}

impl From<f64> for Sensed {
    fn from(measured: f64) -> Self {
        Sensed::direct(measured)
    }
}

/// The system under control: sense the metric, apply the configuration,
/// (optionally) advance one epoch.
pub trait Plant {
    /// Current time in microseconds (simulated or wall clock).
    fn now_us(&self) -> u64;

    /// Senses the metric (and, for indirect channels, the deputy) for
    /// one channel.
    fn sense(&mut self, channel: ChannelId) -> Sensed;

    /// Applies a newly decided setting for one channel.
    fn apply(&mut self, channel: ChannelId, setting: f64);

    /// Advances the plant by one epoch, returning `false` when the run
    /// is over. Only used by [`ControlPlane::run`](crate::ControlPlane::run);
    /// event-driven plants that invoke
    /// [`epoch_for`](crate::ControlPlane::epoch_for) at their own
    /// decision points keep the default.
    fn advance(&mut self) -> bool {
        false
    }

    /// Resets plant-side state for one channel after an injected plant
    /// restart (chaos mode: queues drain, accumulated state is lost).
    /// [`ControlPlane::epoch_for`](crate::ControlPlane::epoch_for) calls
    /// this when the fault plane restarts mid-run; event-driven plants
    /// poll [`ControlPlane::take_plant_restart`](crate::ControlPlane::take_plant_restart)
    /// themselves. The default does nothing.
    fn restart(&mut self, _channel: ChannelId) {}

    /// Sheds already-admitted work for one channel down to the setting
    /// currently in force, when the guard ladder degrades the channel
    /// under a [`GuardPolicy`](crate::GuardPolicy) with
    /// [`shed_admitted`](crate::GuardPolicy::shed_admitted) enabled.
    /// [`ControlPlane::epoch_for`](crate::ControlPlane::epoch_for) calls
    /// this after actuation; event-driven plants poll
    /// [`ControlPlane::take_plant_shed`](crate::ControlPlane::take_plant_shed)
    /// themselves. The default does nothing (most plants have no
    /// sheddable queue).
    fn shed(&mut self, _channel: ChannelId) {}
}
