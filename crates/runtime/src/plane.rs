//! The control plane: one canonical sense→decide→actuate loop.

use smartconf_core::{Hardness, Result, SmartConf, SmartConfIndirect};

use crate::{ChannelId, EpochEvent, EpochLog, Plant, Sensed};

/// How one channel turns a sensor reading into a setting.
///
/// Static baselines and SmartConf controllers flow through the same
/// epoch path, which is what makes comparison runs a single code path.
#[derive(Debug)]
pub enum Decider {
    /// A fixed setting (the static baselines of Figure 5).
    Static(f64),
    /// A directly-acting SmartConf configuration (paper Figure 3).
    Direct(Box<SmartConf>),
    /// An indirectly-acting configuration bounding a deputy variable
    /// (paper Figure 4, §5.3). Requires [`Sensed::deputy`].
    Deputy(Box<SmartConfIndirect>),
}

impl Decider {
    /// The current setting, without consuming a measurement.
    pub fn setting(&mut self) -> f64 {
        match self {
            Decider::Static(v) => *v,
            Decider::Direct(sc) => sc.conf(),
            Decider::Deputy(sc) => sc.conf(),
        }
    }

    /// Whether this channel carries a live controller (vs. a static
    /// baseline).
    pub fn is_smart(&self) -> bool {
        !matches!(self, Decider::Static(_))
    }

    fn controller(&self) -> Option<&smartconf_core::Controller> {
        match self {
            Decider::Static(_) => None,
            Decider::Direct(sc) => Some(sc.controller()),
            Decider::Deputy(sc) => Some(sc.controller()),
        }
    }

    fn controller_mut(&mut self) -> Option<&mut smartconf_core::Controller> {
        match self {
            Decider::Static(_) => None,
            Decider::Direct(sc) => Some(sc.controller_mut()),
            Decider::Deputy(sc) => Some(sc.controller_mut()),
        }
    }
}

/// One named control channel.
#[derive(Debug)]
struct Channel {
    name: String,
    decider: Decider,
    epochs: u64,
}

/// Builds a [`ControlPlane`], handing out [`ChannelId`]s as channels are
/// declared.
#[derive(Debug, Default)]
pub struct ControlPlaneBuilder {
    channels: Vec<Channel>,
}

impl ControlPlaneBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a channel; the returned id is how the plant and the
    /// epoch calls refer to it.
    pub fn channel(&mut self, name: impl Into<String>, decider: Decider) -> ChannelId {
        self.channels.push(Channel {
            name: name.into(),
            decider,
            epochs: 0,
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Finishes the plane. Channels whose controllers share a super-hard
    /// goal metric are coordinated automatically: each one's error share
    /// is split by the interaction count N (paper §5.4), so the group
    /// jointly closes the error without overshooting.
    pub fn build(mut self) -> ControlPlane {
        // Count controllers per super-hard goal metric...
        let mut groups: Vec<(String, u32)> = Vec::new();
        for ch in &self.channels {
            if let Some(ctl) = ch.decider.controller() {
                if ctl.goal().hardness() == Hardness::SuperHard {
                    let metric = ctl.goal().metric().to_string();
                    match groups.iter_mut().find(|(m, _)| *m == metric) {
                        Some((_, n)) => *n += 1,
                        None => groups.push((metric, 1)),
                    }
                }
            }
        }
        // ...and split each group's correction N ways.
        for ch in &mut self.channels {
            if let Some(ctl) = ch.decider.controller_mut() {
                let metric = ctl.goal().metric();
                if let Some((_, n)) = groups.iter().find(|(m, _)| m == metric) {
                    ctl.set_interaction(*n)
                        .expect("interaction count is at least 1");
                }
            }
        }
        let names = self.channels.iter().map(|c| c.name.clone()).collect();
        ControlPlane {
            channels: self.channels,
            log: EpochLog::new(names),
        }
    }
}

/// Drives one or more controllers over a [`Plant`] and records every
/// decision as an [`EpochEvent`].
///
/// # Example
///
/// ```
/// use smartconf_core::{Controller, Goal, SmartConf};
/// use smartconf_runtime::{ChannelId, ControlPlane, Decider, Plant, Sensed};
///
/// // Plant: metric = 2 × setting. Goal: metric == 400.
/// struct Linear { setting: f64, steps: u32, chan: ChannelId }
/// impl Plant for Linear {
///     fn now_us(&self) -> u64 { self.steps as u64 * 1_000_000 }
///     fn sense(&mut self, _: ChannelId) -> Sensed { Sensed::direct(2.0 * self.setting) }
///     fn apply(&mut self, _: ChannelId, setting: f64) { self.setting = setting; }
///     fn advance(&mut self) -> bool { self.steps += 1; self.steps <= 50 }
/// }
///
/// let ctl = Controller::new(2.0, 0.0, Goal::new("m", 400.0), 0.0, (0.0, 1e6), 0.0)?;
/// let mut builder = ControlPlane::builder();
/// let chan = builder.channel("cache.size", Decider::Direct(Box::new(SmartConf::new("cache.size", ctl))));
/// let mut plane = builder.build();
/// let mut plant = Linear { setting: 0.0, steps: 0, chan };
/// plane.run(&mut plant);
/// assert!((2.0 * plant.setting - 400.0).abs() < 1.0);
/// assert_eq!(plane.log().events_for("cache.size").count(), 50);
/// # Ok::<(), smartconf_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ControlPlane {
    channels: Vec<Channel>,
    log: EpochLog,
}

impl ControlPlane {
    /// Starts declaring channels.
    pub fn builder() -> ControlPlaneBuilder {
        ControlPlaneBuilder::new()
    }

    /// A plane with a single channel (the common case); returns the
    /// plane with the channel at id 0.
    pub fn single(name: impl Into<String>, decider: Decider) -> (ControlPlane, ChannelId) {
        let mut b = ControlPlaneBuilder::new();
        let id = b.channel(name, decider);
        (b.build(), id)
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Looks up a channel by name.
    pub fn channel_id(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(ChannelId)
    }

    /// One sense→decide→actuate epoch for one channel, at the plant's
    /// current time. Returns the decided setting (already applied to the
    /// plant).
    ///
    /// Event-driven plants call this at every site where the
    /// configuration takes effect; [`ControlPlane::run`] calls it once
    /// per advance for loop-driven plants.
    pub fn epoch_for<P: Plant + ?Sized>(&mut self, plant: &mut P, id: ChannelId) -> f64 {
        let sensed = plant.sense(id);
        let t_us = plant.now_us();
        let setting = self.decide(id, t_us, sensed);
        plant.apply(id, setting);
        setting
    }

    /// One epoch for every channel, in declaration order.
    pub fn epoch<P: Plant + ?Sized>(&mut self, plant: &mut P) {
        for i in 0..self.channels.len() {
            self.epoch_for(plant, ChannelId(i));
        }
    }

    /// Owns the whole loop for plants that implement [`Plant::advance`]:
    /// advance one epoch, then sense/decide/apply every channel.
    pub fn run<P: Plant>(&mut self, plant: &mut P) {
        while plant.advance() {
            self.epoch(plant);
        }
    }

    /// The decide half of an epoch: feeds the measurement, logs the
    /// [`EpochEvent`], returns the new setting — without touching the
    /// plant. Useful when the actuation site already holds the sensor
    /// values.
    pub fn decide(&mut self, id: ChannelId, t_us: u64, sensed: impl Into<Sensed>) -> f64 {
        let sensed = sensed.into();
        let ch = &mut self.channels[id.0];
        let (setting, target, pole, saturated) = match &mut ch.decider {
            Decider::Static(v) => (*v, f64::NAN, f64::NAN, false),
            Decider::Direct(sc) => {
                sc.set_perf(sensed.measured);
                let setting = sc.conf();
                let ctl = sc.controller();
                let (lo, hi) = ctl.bounds();
                (
                    setting,
                    ctl.effective_target(),
                    ctl.last_pole_used(),
                    ctl.current() <= lo || ctl.current() >= hi,
                )
            }
            Decider::Deputy(sc) => {
                let deputy = sensed.deputy.unwrap_or_else(|| {
                    panic!(
                        "channel '{}' is deputy-driven; Sensed::deputy is required",
                        ch.name
                    )
                });
                sc.set_perf(sensed.measured, deputy);
                let setting = sc.conf();
                let ctl = sc.controller();
                let (lo, hi) = ctl.bounds();
                (
                    setting,
                    ctl.effective_target(),
                    ctl.last_pole_used(),
                    ctl.current() <= lo || ctl.current() >= hi,
                )
            }
        };
        self.log.push(EpochEvent {
            epoch: ch.epochs,
            t_us,
            channel: id.0 as u32,
            setting,
            measured: sensed.measured,
            target,
            error: target - sensed.measured,
            pole,
            saturated,
        });
        ch.epochs += 1;
        setting
    }

    /// The current setting of a channel (no measurement consumed).
    pub fn setting(&mut self, id: ChannelId) -> f64 {
        self.channels[id.0].decider.setting()
    }

    /// Redirects a channel's goal at run time (paper's `setGoal`).
    /// No-op on static channels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGoal`](smartconf_core::Error::InvalidGoal)
    /// if the target is not finite.
    pub fn set_goal(&mut self, id: ChannelId, target: f64) -> Result<()> {
        match &mut self.channels[id.0].decider {
            Decider::Static(_) => Ok(()),
            Decider::Direct(sc) => sc.set_goal(target),
            Decider::Deputy(sc) => sc.set_goal(target),
        }
    }

    /// Overrides a channel's interaction count (Figure 8's N ablation).
    /// No-op on static channels.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is zero.
    pub fn set_interaction(&mut self, id: ChannelId, n: u32) -> Result<()> {
        match self.channels[id.0].decider.controller_mut() {
            Some(ctl) => ctl.set_interaction(n),
            None => Ok(()),
        }
    }

    /// Whether a channel's controller reports its goal as unreachable
    /// (§4.3 alert). Always `false` for static channels.
    pub fn goal_unreachable(&self, id: ChannelId) -> bool {
        self.channels[id.0]
            .decider
            .controller()
            .is_some_and(|c| c.goal_unreachable())
    }

    /// The channel's decider (for controller inspection).
    pub fn decider(&self, id: ChannelId) -> &Decider {
        &self.channels[id.0].decider
    }

    /// Mutable decider access (profiling capture, ablations).
    pub fn decider_mut(&mut self, id: ChannelId) -> &mut Decider {
        &mut self.channels[id.0].decider
    }

    /// The per-epoch event log so far.
    pub fn log(&self) -> &EpochLog {
        &self.log
    }

    /// Consumes the plane, returning the event log (attached to the
    /// scenario's run result by the harness).
    pub fn into_log(self) -> EpochLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartconf_core::{Controller, Goal};

    fn controller(alpha: f64, target: f64, hardness: Hardness, bounds: (f64, f64)) -> Controller {
        let goal = Goal::new("m", target).with_hardness(hardness).unwrap();
        Controller::new(alpha, 0.0, goal, 0.1, bounds, 0.0).unwrap()
    }

    /// metric = gain · setting, with per-channel settings.
    struct LinearPlant {
        gain: f64,
        settings: Vec<f64>,
        t_us: u64,
    }

    impl Plant for LinearPlant {
        fn now_us(&self) -> u64 {
            self.t_us
        }
        fn sense(&mut self, chan: ChannelId) -> Sensed {
            let total: f64 = self.settings.iter().sum();
            Sensed::with_deputy(self.gain * total, self.settings[chan.index()])
        }
        fn apply(&mut self, chan: ChannelId, setting: f64) {
            self.settings[chan.index()] = setting;
        }
        fn advance(&mut self) -> bool {
            self.t_us += 1_000_000;
            self.t_us <= 100_000_000
        }
    }

    #[test]
    fn static_and_smart_share_the_epoch_path() {
        let sc = SmartConf::new("c", controller(1.0, 80.0, Hardness::Soft, (0.0, 1e6)));
        let mut b = ControlPlane::builder();
        let smart = b.channel("c", Decider::Direct(Box::new(sc)));
        let fixed = b.channel("c.static", Decider::Static(30.0));
        let mut plane = b.build();

        let s = plane.decide(smart, 0, 10.0);
        assert_eq!(s, 70.0); // 0 + (80 − 10)/1
        let f = plane.decide(fixed, 0, 10.0);
        assert_eq!(f, 30.0);

        let log = plane.log();
        assert_eq!(log.len(), 2);
        let smart_ev = log.events_for("c").next().unwrap();
        assert_eq!(smart_ev.setting, 70.0);
        assert_eq!(smart_ev.measured, 10.0);
        assert_eq!(smart_ev.error, 70.0);
        assert!(!smart_ev.saturated);
        let static_ev = log.events_for("c.static").next().unwrap();
        assert!(static_ev.pole.is_nan());
        assert!(static_ev.error.is_nan());
    }

    #[test]
    fn run_drives_plant_to_goal_and_logs_epochs() {
        let sc = SmartConf::new("c", controller(2.0, 400.0, Hardness::Soft, (0.0, 1e6)));
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        let mut plant = LinearPlant {
            gain: 2.0,
            settings: vec![0.0],
            t_us: 0,
        };
        plane.run(&mut plant);
        assert!((2.0 * plant.settings[0] - 400.0).abs() < 1.0);
        assert_eq!(plane.log().events_for("c").count(), 100);
        assert_eq!(plane.setting(id), plant.settings[0]);
        assert!(!plane.goal_unreachable(id));
    }

    #[test]
    fn super_hard_goal_split_is_automatic() {
        let mk = || {
            let sc = SmartConfIndirect::new(
                "q",
                controller(1.0, 300.0, Hardness::SuperHard, (0.0, 1e9)),
            );
            Decider::Deputy(Box::new(sc))
        };
        let mut b = ControlPlane::builder();
        let a = b.channel("qa", mk());
        let c = b.channel("qb", mk());
        let mut plane = b.build();

        // Both channels see the shared metric; each must take half the
        // correction (N = 2), so the joint total never overshoots. With
        // λ = 0.1 the super-hard goal tracks its virtual target 270.
        let mut settings = [0.0f64, 0.0];
        for step in 0..200u64 {
            let total = settings[0] + settings[1];
            assert!(total <= 300.0 + 1e-9, "joint overshoot {total}");
            settings[0] = plane.decide(a, step, Sensed::with_deputy(total, settings[0]));
            settings[1] = plane.decide(c, step, Sensed::with_deputy(total, settings[1]));
        }
        let total = settings[0] + settings[1];
        assert!((total - 270.0).abs() < 15.0, "total {total}");

        // The Figure 8 ablation can force N = 1 back on.
        plane.set_interaction(a, 1).unwrap();
        plane.set_interaction(c, 1).unwrap();
    }

    #[test]
    fn saturation_is_logged() {
        // Plant m = setting + 500 with goal m ≤ 100: even at the lower
        // bound the goal is violated, so the controller pins there and
        // reports the goal unreachable after the §4.3 streak.
        let sc = SmartConf::new("c", controller(1.0, 100.0, Hardness::Soft, (0.0, 10.0)));
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        let mut setting = 10.0;
        for step in 0..10u64 {
            setting = plane.decide(id, step, setting + 500.0);
        }
        assert_eq!(setting, 0.0);
        assert!(plane.log().saturation_fraction("c") > 0.5);
        assert!(plane.goal_unreachable(id));
    }

    #[test]
    fn goal_change_retargets_channel() {
        let sc = SmartConf::new("c", controller(1.0, 100.0, Hardness::Soft, (0.0, 1e6)));
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        plane.set_goal(id, 40.0).unwrap();
        assert_eq!(plane.decide(id, 0, 0.0), 40.0);
        assert!(plane.set_goal(id, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "deputy-driven")]
    fn deputy_channel_requires_deputy() {
        let sc = SmartConfIndirect::new("q", controller(1.0, 100.0, Hardness::Hard, (0.0, 1e6)));
        let (mut plane, id) = ControlPlane::single("q", Decider::Deputy(Box::new(sc)));
        let _ = plane.decide(id, 0, 10.0);
    }

    #[test]
    fn channel_lookup_by_name() {
        let (plane, id) = ControlPlane::single("a.b.c", Decider::Static(1.0));
        assert_eq!(plane.channel_id("a.b.c"), Some(id));
        assert_eq!(plane.channel_id("nope"), None);
        assert_eq!(plane.channel_count(), 1);
    }
}
