//! The control plane: one canonical sense→decide→actuate loop.
//!
//! With chaos mode armed ([`ControlPlane::enable_chaos`]) the loop grows
//! a deterministic fault-injection stage and a guard stage; without it,
//! the decide path is exactly the PR 2 code — the chaos branch is a
//! single `Option` check, so clean runs pay nothing.

use smartconf_core::{Hardness, PerfModel, Result, Sense, SmartConf, SmartConfIndirect};

use crate::fault::{ActiveFaults, FaultInjector, SensorFault};
use crate::guard::{ChannelGuard, ChaosSpec, GuardMode, GuardPolicy, GuardSet};
use crate::{ChannelId, EpochEvent, EpochLog, Plant, Sensed};

/// How one channel turns a sensor reading into a setting.
///
/// Static baselines and SmartConf controllers flow through the same
/// epoch path, which is what makes comparison runs a single code path.
#[derive(Debug)]
pub enum Decider {
    /// A fixed setting (the static baselines of Figure 5).
    Static(f64),
    /// A directly-acting SmartConf configuration (paper Figure 3).
    Direct(Box<SmartConf>),
    /// An indirectly-acting configuration bounding a deputy variable
    /// (paper Figure 4, §5.3). Requires [`Sensed::deputy`].
    Deputy(Box<SmartConfIndirect>),
}

impl Decider {
    /// The current setting, without consuming a measurement.
    pub fn setting(&mut self) -> f64 {
        match self {
            Decider::Static(v) => *v,
            Decider::Direct(sc) => sc.conf(),
            Decider::Deputy(sc) => sc.conf(),
        }
    }

    /// Whether this channel carries a live controller (vs. a static
    /// baseline).
    pub fn is_smart(&self) -> bool {
        !matches!(self, Decider::Static(_))
    }

    fn controller(&self) -> Option<&smartconf_core::Controller> {
        match self {
            Decider::Static(_) => None,
            Decider::Direct(sc) => Some(sc.controller()),
            Decider::Deputy(sc) => Some(sc.controller()),
        }
    }

    fn controller_mut(&mut self) -> Option<&mut smartconf_core::Controller> {
        match self {
            Decider::Static(_) => None,
            Decider::Direct(sc) => Some(sc.controller_mut()),
            Decider::Deputy(sc) => Some(sc.controller_mut()),
        }
    }

    /// Forces the controller to a controller-space setting (guard
    /// override path); no-op for static channels. Returns the resulting
    /// output-space configuration.
    fn force(&mut self, value: f64) -> f64 {
        match self {
            Decider::Static(v) => *v,
            Decider::Direct(sc) => sc.force_setting(value),
            Decider::Deputy(sc) => sc.force_setting(value),
        }
    }

    /// Maps a controller-space value into output (configuration) space
    /// without touching controller state.
    fn transduce(&self, value: f64) -> f64 {
        match self {
            Decider::Static(v) => *v,
            Decider::Deputy(sc) => sc.transduce(value),
            Decider::Direct(_) => value,
        }
    }

    /// The normal measurement-driven step (set_perf + conf), shared by
    /// the clean and chaos decide paths. Keyed by [`ChannelId`] so the
    /// steady-state epoch loop never touches the channel's name string.
    fn step_measurement(&mut self, id: ChannelId, measured: f64, deputy: Option<f64>) -> f64 {
        match self {
            Decider::Static(v) => *v,
            Decider::Direct(sc) => {
                sc.set_perf(measured);
                sc.conf()
            }
            Decider::Deputy(sc) => {
                let deputy = deputy.unwrap_or_else(|| {
                    panic!(
                        "channel {} is deputy-driven; Sensed::deputy is required",
                        id.0
                    )
                });
                sc.set_perf(measured, deputy);
                sc.conf()
            }
        }
    }
}

/// The armed chaos machinery: one injector plus per-channel guards.
#[derive(Debug)]
struct ChaosState {
    injector: FaultInjector,
    policy: GuardPolicy,
    guards: Vec<ChannelGuard>,
    /// Per-channel pre-resolved fault-window indices, so the per-epoch
    /// injector evaluation never matches channel-name strings.
    window_map: Vec<Vec<usize>>,
}

/// The sensing period assigned to channels declared without an explicit
/// one ([`ControlPlaneBuilder::channel`]): one second, the uniform
/// quantum the lockstep scenarios have always used. Channels that need
/// their own cadence declare it via
/// [`ControlPlaneBuilder::channel_with_period`].
pub const DEFAULT_PERIOD_US: u64 = 1_000_000;

/// One named control channel.
#[derive(Debug)]
struct Channel {
    name: String,
    decider: Decider,
    epochs: u64,
    /// Sensing period of this channel, microseconds. The lockstep shim
    /// ([`ControlPlane::epoch_for`]) treats it as metadata (the plant
    /// owns the clock); the event kernel
    /// ([`EventPlane`](crate::EventPlane)) schedules one Sense event per
    /// period.
    period_us: u64,
}

/// Builds a [`ControlPlane`], handing out [`ChannelId`]s as channels are
/// declared.
#[derive(Debug, Default)]
pub struct ControlPlaneBuilder {
    channels: Vec<Channel>,
}

impl ControlPlaneBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a channel; the returned id is how the plant and the
    /// epoch calls refer to it. The channel senses on the uniform
    /// [`DEFAULT_PERIOD_US`] quantum.
    pub fn channel(&mut self, name: impl Into<String>, decider: Decider) -> ChannelId {
        self.channel_with_period(name, decider, DEFAULT_PERIOD_US)
    }

    /// Declares a channel with its own sensing period in microseconds
    /// (clamped ≥ 1). Under the event kernel
    /// ([`EventPlane`](crate::EventPlane)) the channel senses once per
    /// period; under the lockstep shim the period is advisory metadata a
    /// scenario can read back via [`ControlPlane::period_us`] to pace
    /// its own control ticks.
    pub fn channel_with_period(
        &mut self,
        name: impl Into<String>,
        decider: Decider,
        period_us: u64,
    ) -> ChannelId {
        self.channels.push(Channel {
            name: name.into(),
            decider,
            epochs: 0,
            period_us: period_us.max(1),
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Finishes the plane. Channels whose controllers share a super-hard
    /// goal metric are coordinated automatically: each one's error share
    /// is split by the interaction count N (paper §5.4), so the group
    /// jointly closes the error without overshooting.
    pub fn build(mut self) -> ControlPlane {
        // Count controllers per super-hard goal metric...
        let mut groups: Vec<(String, u32)> = Vec::new();
        for ch in &self.channels {
            if let Some(ctl) = ch.decider.controller() {
                if ctl.goal().hardness() == Hardness::SuperHard {
                    let metric = ctl.goal().metric().to_string();
                    match groups.iter_mut().find(|(m, _)| *m == metric) {
                        Some((_, n)) => *n += 1,
                        None => groups.push((metric, 1)),
                    }
                }
            }
        }
        // ...and split each group's correction N ways.
        for ch in &mut self.channels {
            if let Some(ctl) = ch.decider.controller_mut() {
                let metric = ctl.goal().metric();
                if let Some((_, n)) = groups.iter().find(|(m, _)| m == metric) {
                    ctl.set_interaction(*n)
                        .expect("interaction count is at least 1");
                }
            }
        }
        let names = self.channels.iter().map(|c| c.name.clone()).collect();
        ControlPlane {
            channels: self.channels,
            log: EpochLog::new(names),
            chaos: None,
        }
    }
}

/// Drives one or more controllers over a [`Plant`] and records every
/// decision as an [`EpochEvent`].
///
/// # Example
///
/// ```
/// use smartconf_core::{Controller, Goal, SmartConf};
/// use smartconf_runtime::{ChannelId, ControlPlane, Decider, Plant, Sensed};
///
/// // Plant: metric = 2 × setting. Goal: metric == 400.
/// struct Linear { setting: f64, steps: u32, chan: ChannelId }
/// impl Plant for Linear {
///     fn now_us(&self) -> u64 { self.steps as u64 * 1_000_000 }
///     fn sense(&mut self, _: ChannelId) -> Sensed { Sensed::direct(2.0 * self.setting) }
///     fn apply(&mut self, _: ChannelId, setting: f64) { self.setting = setting; }
///     fn advance(&mut self) -> bool { self.steps += 1; self.steps <= 50 }
/// }
///
/// let ctl = Controller::new(2.0, 0.0, Goal::new("m", 400.0), 0.0, (0.0, 1e6), 0.0)?;
/// let mut builder = ControlPlane::builder();
/// let chan = builder.channel("cache.size", Decider::Direct(Box::new(SmartConf::new("cache.size", ctl))));
/// let mut plane = builder.build();
/// let mut plant = Linear { setting: 0.0, steps: 0, chan };
/// plane.run(&mut plant);
/// assert!((2.0 * plant.setting - 400.0).abs() < 1.0);
/// assert_eq!(plane.log().events_for("cache.size").count(), 50);
/// # Ok::<(), smartconf_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ControlPlane {
    channels: Vec<Channel>,
    log: EpochLog,
    chaos: Option<Box<ChaosState>>,
}

impl ControlPlane {
    /// Starts declaring channels.
    pub fn builder() -> ControlPlaneBuilder {
        ControlPlaneBuilder::new()
    }

    /// A plane with a single channel (the common case); returns the
    /// plane with the channel at id 0.
    pub fn single(name: impl Into<String>, decider: Decider) -> (ControlPlane, ChannelId) {
        let mut b = ControlPlaneBuilder::new();
        let id = b.channel(name, decider);
        (b.build(), id)
    }

    /// A single-channel plane with an explicit sensing period (see
    /// [`ControlPlaneBuilder::channel_with_period`]).
    pub fn single_with_period(
        name: impl Into<String>,
        decider: Decider,
        period_us: u64,
    ) -> (ControlPlane, ChannelId) {
        let mut b = ControlPlaneBuilder::new();
        let id = b.channel_with_period(name, decider, period_us);
        (b.build(), id)
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The sensing period of a channel, microseconds.
    pub fn period_us(&self, id: ChannelId) -> u64 {
        self.channels[id.0].period_us
    }

    /// Completed epochs (decides) of a channel.
    pub fn epochs(&self, id: ChannelId) -> u64 {
        self.channels[id.0].epochs
    }

    /// Looks up a channel by name.
    pub fn channel_id(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(ChannelId)
    }

    /// One sense→decide→actuate epoch for one channel, at the plant's
    /// current time. Returns the decided setting (already applied to the
    /// plant).
    ///
    /// This is the lockstep compatibility shim over the event kernel:
    /// it delivers, synchronously at the caller's site, exactly the
    /// Sense→Actuate pair [`EventPlane`](crate::EventPlane) schedules
    /// through the calendar (sense, decide, restart poll, apply, shed
    /// poll — in that order). Plants that own their own clock call this
    /// at every site where the configuration takes effect;
    /// [`ControlPlane::run`] calls it once per advance for loop-driven
    /// plants.
    pub fn epoch_for<P: Plant + ?Sized>(&mut self, plant: &mut P, id: ChannelId) -> f64 {
        let sensed = plant.sense(id);
        let t_us = plant.now_us();
        let setting = self.decide(id, t_us, sensed);
        if self.chaos.is_some() && self.take_plant_restart(id) {
            plant.restart(id);
        }
        plant.apply(id, setting);
        if self.chaos.is_some() && self.take_plant_shed(id) {
            plant.shed(id);
        }
        setting
    }

    /// One epoch for every channel, in declaration order — the lockstep
    /// equivalent of one uniform-period round of the event kernel's
    /// calendar.
    pub fn epoch<P: Plant + ?Sized>(&mut self, plant: &mut P) {
        for i in 0..self.channels.len() {
            self.epoch_for(plant, ChannelId(i));
        }
    }

    /// Owns the whole loop for plants that implement [`Plant::advance`]:
    /// advance one epoch, then sense/decide/apply every channel. With
    /// all channels on the same period this produces byte-identical
    /// [`EpochLog`] output to driving the same plant through
    /// [`EventPlane`](crate::EventPlane) (the event kernel's property
    /// tests pin that equivalence); heterogeneous periods require the
    /// kernel.
    pub fn run<P: Plant>(&mut self, plant: &mut P) {
        while plant.advance() {
            self.epoch(plant);
        }
    }

    /// The decide half of an epoch: feeds the measurement, logs the
    /// [`EpochEvent`], returns the new setting — without touching the
    /// plant. Useful when the actuation site already holds the sensor
    /// values.
    pub fn decide(&mut self, id: ChannelId, t_us: u64, sensed: impl Into<Sensed>) -> f64 {
        let sensed = sensed.into();
        if self.chaos.is_some() {
            return self.decide_chaos(id, t_us, sensed);
        }
        let ch = &mut self.channels[id.0];
        let (setting, target, pole, saturated) = match &mut ch.decider {
            Decider::Static(v) => (*v, f64::NAN, f64::NAN, false),
            Decider::Direct(sc) => {
                sc.set_perf(sensed.measured);
                let setting = sc.conf();
                let ctl = sc.controller();
                let (lo, hi) = ctl.bounds();
                (
                    setting,
                    ctl.effective_target(),
                    ctl.last_pole_used(),
                    ctl.current() <= lo || ctl.current() >= hi,
                )
            }
            Decider::Deputy(sc) => {
                let deputy = sensed.deputy.unwrap_or_else(|| {
                    panic!(
                        "channel '{}' is deputy-driven; Sensed::deputy is required",
                        ch.name
                    )
                });
                sc.set_perf(sensed.measured, deputy);
                let setting = sc.conf();
                let ctl = sc.controller();
                let (lo, hi) = ctl.bounds();
                (
                    setting,
                    ctl.effective_target(),
                    ctl.last_pole_used(),
                    ctl.current() <= lo || ctl.current() >= hi,
                )
            }
        };
        self.log.push(EpochEvent {
            epoch: ch.epochs,
            t_us,
            channel: id.0 as u32,
            setting,
            measured: sensed.measured,
            target,
            error: target - sensed.measured,
            pole,
            saturated,
            faults: Default::default(),
            guards: Default::default(),
        });
        ch.epochs += 1;
        setting
    }

    /// The decide path with chaos armed: inject faults, run the guard
    /// ladder, then (maybe) the normal controller step. See the module
    /// docs of [`crate::guard`] for the stage ordering.
    fn decide_chaos(&mut self, id: ChannelId, t_us: u64, sensed: Sensed) -> f64 {
        let chaos = self.chaos.as_ref().expect("chaos is armed");
        let active: ActiveFaults = chaos.injector.at_windows(
            &chaos.window_map[id.0],
            id.0 as u32,
            self.channels[id.0].epochs,
        );
        self.decide_with_faults(id, t_us, sensed, active)
    }

    /// The guard-ladder half of the chaos decide path, with the injected
    /// faults already evaluated. [`ControlPlane::decide`] computes them
    /// by scanning the channel's full window list; the event kernel
    /// ([`EventPlane`](crate::EventPlane)) computes them from the
    /// edge-maintained active-window set — both must land here so the
    /// two paths stay bit-identical.
    pub(crate) fn decide_with_faults(
        &mut self,
        id: ChannelId,
        t_us: u64,
        sensed: Sensed,
        active: ActiveFaults,
    ) -> f64 {
        let chaos = self.chaos.as_mut().expect("chaos is armed");
        let ch = &mut self.channels[id.0];
        let epoch = ch.epochs;
        let policy = &chaos.policy;
        let g = &mut chaos.guards[id.0];
        g.last_epoch = epoch;
        let faults = active.set;
        let mut guards = GuardSet::default();

        // Static channels have no controller to defend; record the
        // injected faults and keep the fixed setting.
        if !ch.decider.is_smart() {
            if active.restart {
                g.plant_restart = true;
                g.restarts += 1;
            }
            let setting = ch.decider.setting();
            self.log.push(EpochEvent {
                epoch,
                t_us,
                channel: id.0 as u32,
                setting,
                measured: sensed.measured,
                target: f64::NAN,
                error: f64::NAN,
                pole: f64::NAN,
                saturated: false,
                faults,
                guards,
            });
            ch.epochs += 1;
            return setting;
        }

        // 1. Plant restart: controller back to its initial setting,
        //    accumulated guard state discarded. Frozen channels raise the
        //    re-profiling request (their model cannot change without a
        //    fresh profile); adaptive channels instead reset their
        //    estimator covariance and relearn the post-restart plant in
        //    place — no re-profiling call.
        if active.restart {
            let initial = g.initial;
            let base = g.base_target;
            let adaptive = ch.decider.controller().is_some_and(|c| c.is_adaptive());
            if adaptive {
                g.reset_after_restart_in_place();
                guards.insert(GuardSet::RELEARN);
            } else {
                g.reset_after_restart();
                guards.insert(GuardSet::REPROFILE);
            }
            if let Some(ctl) = ch.decider.controller_mut() {
                ctl.reset(initial);
                ctl.set_goal(base).expect("base target was a valid goal");
                if adaptive {
                    ctl.model_mut().relearn();
                }
            }
            ch.decider.force(initial);
        }

        // 2. Goal flap: tighten the target while the window is active,
        //    restore the scenario's own target when it ends.
        if let Some(frac) = active.goal_flap {
            if let Some(ctl) = ch.decider.controller_mut() {
                if !g.flapped {
                    g.base_target = ctl.goal().target();
                    g.flapped = true;
                }
                let flapped = match ctl.goal().sense() {
                    Sense::UpperBound => g.base_target * (1.0 - frac),
                    Sense::LowerBound => g.base_target * (1.0 + frac),
                };
                ctl.set_goal(flapped).expect("flapped target is finite");
            }
        } else if g.flapped {
            g.flapped = false;
            let base = g.base_target;
            if let Some(ctl) = ch.decider.controller_mut() {
                ctl.set_goal(base).expect("base target was a valid goal");
            }
        }

        // 3. Sensor fault: transform (or swallow) the true reading.
        let delivered: Option<f64> = match active.sensor {
            None => Some(sensed.measured),
            Some(SensorFault::Drop) => None,
            Some(SensorFault::Stale) => g.last_raw,
            Some(SensorFault::Nan) => Some(f64::NAN),
            Some(SensorFault::Scale(k)) => Some(sensed.measured * k),
        };

        // 4. Admission: stale detection, then finite/median validation.
        let target = ch
            .decider
            .controller()
            .map(|c| c.effective_target())
            .unwrap_or(f64::NAN);
        let mut admitted: Option<f64> = None;
        match delivered {
            None => guards.insert(GuardSet::MISSED),
            Some(v) => {
                g.note_delivered(v);
                let off_target =
                    (v - target).abs() > policy.stale_error_frac * target.abs().max(1.0);
                let frozen_under_actuation = g.actuated_stale >= policy.actuated_stale_epochs;
                if (g.stale_run >= policy.stale_epochs && off_target) || frozen_under_actuation {
                    guards.insert(GuardSet::STALE_HOLD);
                    guards.insert(GuardSet::MISSED);
                    // A freeze the off-target test cannot see (the
                    // repeated value sits near the target) blinds a
                    // hard-goal channel exactly when a load burst needs
                    // it: degrade to the profiled-safe fallback instead
                    // of holding a setting tuned for the frozen picture.
                    if frozen_under_actuation && g.mode == GuardMode::Engaged {
                        let hard = ch
                            .decider
                            .controller()
                            .is_some_and(|c| c.goal().hardness().is_hard());
                        if hard {
                            g.mode = GuardMode::Fallback {
                                until: epoch + g.enter_cooldown(policy),
                            };
                            guards.insert(GuardSet::FALLBACK_ENTER);
                        }
                    }
                } else if !g.filter.admit(v) {
                    guards.insert(GuardSet::REJECTED);
                    // Sensor voting: instead of going blind on a
                    // corrupted burst, feed the controller the median of
                    // the recent genuinely-admitted readings (which a
                    // burst cannot have polluted). Off (window 0) this is
                    // the historical rejected-means-missed path. Voting
                    // is an engaged-mode device only: a fallback hold is
                    // actively draining the plant, so consensus there
                    // goes stale by construction — during (and right out
                    // of) a hold, rejected still means missed.
                    let consensus = (g.mode == GuardMode::Engaged)
                        .then(|| g.vote_median(policy.vote_window))
                        .flatten();
                    if let Some(consensus) = consensus {
                        guards.insert(GuardSet::VOTED);
                        admitted = Some(consensus);
                    } else {
                        guards.insert(GuardSet::MISSED);
                    }
                } else {
                    if g.mode == GuardMode::Engaged {
                        g.push_vote(v, policy.vote_window);
                    }
                    admitted = Some(v);
                }
            }
        }

        // Watchdog: after M consecutive missing epochs, revert to the
        // last setting decided while the channel was healthy. If a goal
        // retarget invalidated that evidence, revert on the very first
        // miss — the held setting was only ever safe under the old goal.
        if admitted.is_none() {
            g.missed += 1;
            if g.missed >= policy.watchdog_epochs || !g.evidence_fresh {
                ch.decider.force(g.last_safe);
                guards.insert(GuardSet::WATCHDOG);
            }
        } else {
            g.missed = 0;
        }

        // 5. Decide: fallback hold, re-engage, or the normal step.
        match g.mode {
            GuardMode::Fallback { until } if epoch < until => {
                ch.decider.force(g.fallback);
                guards.insert(GuardSet::FALLBACK);
                // Adaptive channels keep learning through the hold: an
                // admitted reading still pairs with the in-force
                // operating point (the deputy for indirect channels), so
                // the estimator can rebuild confidence before re-engage.
                if let Some(v) = admitted {
                    if let Some(ctl) = ch.decider.controller_mut() {
                        if ctl.is_adaptive() {
                            let x = sensed.deputy.unwrap_or_else(|| ctl.current());
                            ctl.model_mut().observe(x, v);
                        }
                    }
                }
            }
            mode => {
                if matches!(mode, GuardMode::Fallback { .. }) {
                    g.mode = GuardMode::Engaged;
                    guards.insert(GuardSet::REENGAGE);
                }
                if let Some(v) = admitted {
                    ch.decider.step_measurement(id, v, sensed.deputy);
                }
                // No admitted reading: hold (possibly watchdog-forced).
            }
        }
        let mut decided = ch
            .decider
            .controller()
            .map(|c| c.current())
            .expect("smart channel has a controller");

        // 6. Divergence detector: |error| growing on the violating side
        //    of a hard goal for K consecutive admitted epochs degrades
        //    the channel to its profiled-safe fallback.
        if let (Some(v), GuardMode::Engaged) = (admitted, g.mode) {
            let (hard, violation) = {
                let ctl = ch.decider.controller().expect("smart channel");
                let err = ctl.goal().error_against(ctl.effective_target(), v);
                (ctl.goal().hardness().is_hard(), (err < 0.0).then(|| -err))
            };
            match (hard, violation) {
                (true, Some(mag)) => {
                    if mag > g.prev_violation {
                        g.worsening += 1;
                    } else {
                        g.worsening = 0;
                    }
                    g.prev_violation = mag;
                    if g.worsening >= policy.divergence_streak {
                        g.mode = GuardMode::Fallback {
                            until: epoch + g.enter_cooldown(policy),
                        };
                        g.worsening = 0;
                        g.prev_violation = 0.0;
                        ch.decider.force(g.fallback);
                        decided = ch.decider.controller().expect("smart channel").current();
                        guards.insert(GuardSet::FALLBACK_ENTER);
                        guards.insert(GuardSet::FALLBACK);
                    }
                }
                _ => {
                    g.worsening = 0;
                    g.prev_violation = 0.0;
                }
            }
        }

        // 6b. Model doubt (adaptive channels): when the online
        //     estimator's confidence collapses below the policy floor,
        //     its recent gains are suspect — degrade to the profiled-safe
        //     fallback for one cooldown. The fallback hold above keeps
        //     feeding the estimator, so confidence recovers before
        //     re-engage (a still-doubted model just re-enters).
        if policy.confidence_floor > 0.0 && g.mode == GuardMode::Engaged {
            let doubted = ch.decider.controller().is_some_and(|c| {
                c.is_adaptive() && c.model().confidence() < policy.confidence_floor
            });
            if doubted {
                g.mode = GuardMode::Fallback {
                    until: epoch + g.enter_cooldown(policy),
                };
                g.worsening = 0;
                g.prev_violation = 0.0;
                ch.decider.force(g.fallback);
                decided = ch.decider.controller().expect("smart channel").current();
                guards.insert(GuardSet::MODEL_DOUBT);
                guards.insert(GuardSet::FALLBACK_ENTER);
                guards.insert(GuardSet::FALLBACK);
            }
        }

        // 7. Actuator faults: saturation (with anti-windup), then lag.
        if let Some(frac) = active.saturate {
            let (lo, hi) = ch.decider.controller().expect("smart channel").bounds();
            let cap = lo + frac * (hi - lo);
            if decided > cap {
                decided = cap;
                if policy.anti_windup {
                    ch.decider.force(cap);
                    guards.insert(GuardSet::ANTI_WINDUP);
                }
            }
        }
        let mut in_force = if let Some(k) = active.lag {
            g.pending.push_back((epoch + k, decided));
            while let Some(&(due, v)) = g.pending.front() {
                if due <= epoch {
                    g.in_force = v;
                    g.pending.pop_front();
                } else {
                    break;
                }
            }
            g.in_force
        } else {
            g.pending.clear();
            g.in_force = decided;
            decided
        };
        // 8. Admitted-work shedding: while the channel is degraded (a
        //    watchdog revert or a fallback hold — the guard no longer
        //    trusts the controller's recent decisions), ask the plant to
        //    also trim work admitted *before* the guard engaged down to
        //    the in-force bound. The watchdog's reverted setting was
        //    only ever safe against the load it was decided under, so
        //    the bound is additionally clamped to the safe side of the
        //    profiled-safe fallback — the one setting known to survive
        //    the goal's worst profiled case — and ratcheted against the
        //    previous in-force value: a degraded channel must never
        //    *loosen* its bound (a goal flap can squeeze the engaged
        //    controller well below the fallback; reverting up to it
        //    mid-crisis releases a refill spike). Opt-in: admission-only
        //    guards cannot stop an already-enqueued backlog from
        //    violating a hard goal (TWIN/HB2149's queues).
        if policy.shed_admitted
            && (guards.contains(GuardSet::WATCHDOG)
                || guards.contains(GuardSet::FALLBACK)
                || guards.contains(GuardSet::FALLBACK_ENTER))
        {
            // Which direction of the *setting* is safe depends on both
            // the goal sense and the profiled response slope: a queue
            // bound raises its memory metric (alpha > 0, upper bound →
            // clamp down), while HB2149's lowerLimit *shortens* its
            // block-time metric (alpha < 0, upper bound → clamp up).
            let ctl = ch.decider.controller().expect("smart channel");
            let toward_violation = match ctl.goal().sense() {
                Sense::UpperBound => ctl.alpha(),
                Sense::LowerBound => -ctl.alpha(),
            };
            let clamped = if toward_violation > 0.0 {
                in_force.min(g.fallback).min(g.prev_in_force)
            } else {
                in_force.max(g.fallback).max(g.prev_in_force)
            };
            if clamped != in_force {
                // `force` clamps to the controller's profiled bounds; a
                // declared fallback may sit outside them, and the
                // in-force setting must never leave bounds.
                let forced = ch.decider.force(clamped);
                in_force = forced;
                g.in_force = forced;
            }
            g.plant_shed = true;
            guards.insert(GuardSet::SHED);
        }

        g.setting_moved = in_force != g.prev_in_force;
        g.prev_in_force = in_force;

        if admitted.is_some() && g.mode == GuardMode::Engaged {
            g.last_safe = decided;
            g.evidence_fresh = true;
            // A sustained healthy engaged stretch earns the backoff
            // schedule back down to the base cooldown.
            g.clean_streak += 1;
            if g.clean_streak >= policy.cooldown_epochs {
                g.backoff_exp = 0;
            }
        }

        let applied = ch.decider.transduce(in_force);
        let (target, pole, saturated) = {
            let ctl = ch.decider.controller().expect("smart channel");
            let (lo, hi) = ctl.bounds();
            (
                ctl.effective_target(),
                ctl.last_pole_used(),
                ctl.current() <= lo || ctl.current() >= hi,
            )
        };
        let measured = delivered.unwrap_or(f64::NAN);
        self.log.push(EpochEvent {
            epoch,
            t_us,
            channel: id.0 as u32,
            setting: applied,
            measured,
            target,
            error: target - measured,
            pole,
            saturated,
            faults,
            guards,
        });
        ch.epochs += 1;
        applied
    }

    /// Arms chaos mode: subsequent [`ControlPlane::decide`] calls run the
    /// fault-injection and guard stages. Per-channel fallbacks come from
    /// the spec's [`GuardPolicy`]; channels without a declared fallback
    /// fall back to their current (initial) setting.
    pub fn enable_chaos(&mut self, spec: ChaosSpec) {
        let guards = self
            .channels
            .iter()
            .map(|ch| {
                let initial = ch
                    .decider
                    .controller()
                    .map(|c| c.current())
                    .unwrap_or(f64::NAN);
                let fallback = spec.guard.fallback_for(&ch.name).unwrap_or(initial);
                let base_target = ch
                    .decider
                    .controller()
                    .map(|c| c.goal().target())
                    .unwrap_or(f64::NAN);
                ChannelGuard::new(&spec.guard, fallback, initial, base_target)
            })
            .collect();
        let injector = FaultInjector::new(spec.seed, spec.plan);
        // Resolve each channel's matching fault windows once, here, so
        // the per-epoch decide path never compares name strings.
        let window_map = self
            .channels
            .iter()
            .map(|ch| injector.windows_for(&ch.name))
            .collect();
        self.chaos = Some(Box::new(ChaosState {
            injector,
            policy: spec.guard,
            guards,
            window_map,
        }));
    }

    /// Whether chaos mode is armed.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos.is_some()
    }

    /// Whether a restart raised this channel's re-profiling request
    /// (chaos mode only; the restart-recovery hook of the degradation
    /// ladder). Cleared by [`ControlPlane::take_reprofile`].
    pub fn reprofile_requested(&self, id: ChannelId) -> bool {
        self.chaos
            .as_ref()
            .is_some_and(|c| c.guards[id.0].reprofile)
    }

    /// Consumes the channel's re-profiling request, returning whether one
    /// was pending. Embedders poll this after epochs and rerun their
    /// profiler when it fires.
    pub fn take_reprofile(&mut self, id: ChannelId) -> bool {
        match &mut self.chaos {
            Some(c) => std::mem::take(&mut c.guards[id.0].reprofile),
            None => false,
        }
    }

    /// Consumes the channel's pending plant-restart notification
    /// ([`ControlPlane::epoch_for`] polls this to call
    /// [`Plant::restart`]; event-driven plants that call
    /// [`ControlPlane::decide`] directly poll it themselves).
    pub fn take_plant_restart(&mut self, id: ChannelId) -> bool {
        match &mut self.chaos {
            Some(c) => std::mem::take(&mut c.guards[id.0].plant_restart),
            None => false,
        }
    }

    /// Consumes the channel's pending shed notification: `true` when a
    /// degraded channel under a [`GuardPolicy::shed_admitted`] policy
    /// wants the plant to trim already-admitted work to the in-force
    /// bound ([`ControlPlane::epoch_for`] polls this to call
    /// [`Plant::shed`]; event-driven plants that call
    /// [`ControlPlane::decide`] directly poll it themselves).
    pub fn take_plant_shed(&mut self, id: ChannelId) -> bool {
        match &mut self.chaos {
            Some(c) => std::mem::take(&mut c.guards[id.0].plant_shed),
            None => false,
        }
    }

    /// Lifetime injected-restart count for a channel (chaos mode only).
    pub fn restart_count(&self, id: ChannelId) -> u64 {
        self.chaos.as_ref().map_or(0, |c| c.guards[id.0].restarts)
    }

    /// The channel's pre-resolved fault-window indices (chaos mode;
    /// empty otherwise). The event kernel schedules window-edge events
    /// from these at construction.
    pub(crate) fn chaos_windows(&self, id: ChannelId) -> &[usize] {
        match &self.chaos {
            Some(c) => &c.window_map[id.0],
            None => &[],
        }
    }

    /// The first active pulse of fault window `window` on `channel`'s
    /// epoch axis ending after `epoch` (see [`FaultWindow::pulse_after`];
    /// staggered windows shift per channel). `None` without chaos or
    /// when the window never activates again.
    pub(crate) fn window_pulse_after(
        &self,
        window: usize,
        channel: ChannelId,
        epoch: u64,
    ) -> Option<(u64, u64)> {
        let chaos = self.chaos.as_ref()?;
        chaos
            .injector
            .plan()
            .windows()
            .get(window)?
            .pulse_after(channel.0 as u32, epoch)
    }

    /// Evaluates the injector over a pre-verified active-window subset
    /// (the event kernel's edge-maintained set). Equivalent to the full
    /// scan in [`ControlPlane::decide`] whenever `windows` holds exactly
    /// the channel's windows whose pulses cover its current epoch.
    pub(crate) fn active_faults(&self, id: ChannelId, windows: &[usize]) -> ActiveFaults {
        match &self.chaos {
            Some(c) => c
                .injector
                .at_windows(windows, id.0 as u32, self.channels[id.0].epochs),
            None => ActiveFaults::default(),
        }
    }

    /// The current setting of a channel (no measurement consumed).
    pub fn setting(&mut self, id: ChannelId) -> f64 {
        self.channels[id.0].decider.setting()
    }

    /// Redirects a channel's goal at run time (paper's `setGoal`).
    /// No-op on static channels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGoal`](smartconf_core::Error::InvalidGoal)
    /// if the target is not finite.
    pub fn set_goal(&mut self, id: ChannelId, target: f64) -> Result<()> {
        // Keep the chaos guard's restore point in sync, so a goal-flap
        // window ending doesn't undo a scenario's own retargeting. The
        // retarget also invalidates the watchdog's safety evidence: a
        // setting that met the old goal may violate the new one, so the
        // revert point drops to the profiled-safe fallback until a
        // healthy epoch under the new goal records a fresh one.
        if target.is_finite() {
            if let Some(chaos) = &mut self.chaos {
                let cooldown = chaos.policy.cooldown_epochs;
                let g = &mut chaos.guards[id.0];
                g.base_target = target;
                g.last_safe = g.fallback;
                g.evidence_fresh = false;
                // A retarget can't wait on a backed-up actuator: decisions
                // queued under the old goal would stay in force for the
                // whole lag window. Flush them and actuate the fallback
                // out of band, holding it through the cooldown.
                if !g.pending.is_empty() {
                    g.pending.clear();
                    g.in_force = g.fallback;
                    g.mode = GuardMode::Fallback {
                        until: g.last_epoch + 1 + cooldown,
                    };
                }
            }
        }
        match &mut self.channels[id.0].decider {
            Decider::Static(_) => Ok(()),
            Decider::Direct(sc) => sc.set_goal(target),
            Decider::Deputy(sc) => sc.set_goal(target),
        }
    }

    /// Overrides a channel's interaction count (Figure 8's N ablation).
    /// No-op on static channels.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is zero.
    pub fn set_interaction(&mut self, id: ChannelId, n: u32) -> Result<()> {
        match self.channels[id.0].decider.controller_mut() {
            Some(ctl) => ctl.set_interaction(n),
            None => Ok(()),
        }
    }

    /// Whether a channel's controller reports its goal as unreachable
    /// (§4.3 alert). Always `false` for static channels.
    pub fn goal_unreachable(&self, id: ChannelId) -> bool {
        self.channels[id.0]
            .decider
            .controller()
            .is_some_and(|c| c.goal_unreachable())
    }

    /// The channel's decider (for controller inspection).
    pub fn decider(&self, id: ChannelId) -> &Decider {
        &self.channels[id.0].decider
    }

    /// Mutable decider access (profiling capture, ablations).
    pub fn decider_mut(&mut self, id: ChannelId) -> &mut Decider {
        &mut self.channels[id.0].decider
    }

    /// The per-epoch event log so far.
    pub fn log(&self) -> &EpochLog {
        &self.log
    }

    /// Consumes the plane, returning the event log (attached to the
    /// scenario's run result by the harness).
    pub fn into_log(self) -> EpochLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartconf_core::{Controller, Goal};

    fn controller(alpha: f64, target: f64, hardness: Hardness, bounds: (f64, f64)) -> Controller {
        let goal = Goal::new("m", target).with_hardness(hardness).unwrap();
        Controller::new(alpha, 0.0, goal, 0.1, bounds, 0.0).unwrap()
    }

    /// metric = gain · setting, with per-channel settings.
    struct LinearPlant {
        gain: f64,
        settings: Vec<f64>,
        t_us: u64,
    }

    impl Plant for LinearPlant {
        fn now_us(&self) -> u64 {
            self.t_us
        }
        fn sense(&mut self, chan: ChannelId) -> Sensed {
            let total: f64 = self.settings.iter().sum();
            Sensed::with_deputy(self.gain * total, self.settings[chan.index()])
        }
        fn apply(&mut self, chan: ChannelId, setting: f64) {
            self.settings[chan.index()] = setting;
        }
        fn advance(&mut self) -> bool {
            self.t_us += 1_000_000;
            self.t_us <= 100_000_000
        }
    }

    #[test]
    fn static_and_smart_share_the_epoch_path() {
        let sc = SmartConf::new("c", controller(1.0, 80.0, Hardness::Soft, (0.0, 1e6)));
        let mut b = ControlPlane::builder();
        let smart = b.channel("c", Decider::Direct(Box::new(sc)));
        let fixed = b.channel("c.static", Decider::Static(30.0));
        let mut plane = b.build();

        let s = plane.decide(smart, 0, 10.0);
        assert_eq!(s, 70.0); // 0 + (80 − 10)/1
        let f = plane.decide(fixed, 0, 10.0);
        assert_eq!(f, 30.0);

        let log = plane.log();
        assert_eq!(log.len(), 2);
        let smart_ev = log.events_for("c").next().unwrap();
        assert_eq!(smart_ev.setting, 70.0);
        assert_eq!(smart_ev.measured, 10.0);
        assert_eq!(smart_ev.error, 70.0);
        assert!(!smart_ev.saturated);
        let static_ev = log.events_for("c.static").next().unwrap();
        assert!(static_ev.pole.is_nan());
        assert!(static_ev.error.is_nan());
    }

    #[test]
    fn run_drives_plant_to_goal_and_logs_epochs() {
        let sc = SmartConf::new("c", controller(2.0, 400.0, Hardness::Soft, (0.0, 1e6)));
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        let mut plant = LinearPlant {
            gain: 2.0,
            settings: vec![0.0],
            t_us: 0,
        };
        plane.run(&mut plant);
        assert!((2.0 * plant.settings[0] - 400.0).abs() < 1.0);
        assert_eq!(plane.log().events_for("c").count(), 100);
        assert_eq!(plane.setting(id), plant.settings[0]);
        assert!(!plane.goal_unreachable(id));
    }

    #[test]
    fn super_hard_goal_split_is_automatic() {
        let mk = || {
            let sc = SmartConfIndirect::new(
                "q",
                controller(1.0, 300.0, Hardness::SuperHard, (0.0, 1e9)),
            );
            Decider::Deputy(Box::new(sc))
        };
        let mut b = ControlPlane::builder();
        let a = b.channel("qa", mk());
        let c = b.channel("qb", mk());
        let mut plane = b.build();

        // Both channels see the shared metric; each must take half the
        // correction (N = 2), so the joint total never overshoots. With
        // λ = 0.1 the super-hard goal tracks its virtual target 270.
        let mut settings = [0.0f64, 0.0];
        for step in 0..200u64 {
            let total = settings[0] + settings[1];
            assert!(total <= 300.0 + 1e-9, "joint overshoot {total}");
            settings[0] = plane.decide(a, step, Sensed::with_deputy(total, settings[0]));
            settings[1] = plane.decide(c, step, Sensed::with_deputy(total, settings[1]));
        }
        let total = settings[0] + settings[1];
        assert!((total - 270.0).abs() < 15.0, "total {total}");

        // The Figure 8 ablation can force N = 1 back on.
        plane.set_interaction(a, 1).unwrap();
        plane.set_interaction(c, 1).unwrap();
    }

    #[test]
    fn saturation_is_logged() {
        // Plant m = setting + 500 with goal m ≤ 100: even at the lower
        // bound the goal is violated, so the controller pins there and
        // reports the goal unreachable after the §4.3 streak.
        let sc = SmartConf::new("c", controller(1.0, 100.0, Hardness::Soft, (0.0, 10.0)));
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        let mut setting = 10.0;
        for step in 0..10u64 {
            setting = plane.decide(id, step, setting + 500.0);
        }
        assert_eq!(setting, 0.0);
        assert!(plane.log().saturation_fraction("c").unwrap() > 0.5);
        assert!(plane.goal_unreachable(id));
    }

    #[test]
    fn goal_change_retargets_channel() {
        let sc = SmartConf::new("c", controller(1.0, 100.0, Hardness::Soft, (0.0, 1e6)));
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        plane.set_goal(id, 40.0).unwrap();
        assert_eq!(plane.decide(id, 0, 0.0), 40.0);
        assert!(plane.set_goal(id, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "deputy-driven")]
    fn deputy_channel_requires_deputy() {
        let sc = SmartConfIndirect::new("q", controller(1.0, 100.0, Hardness::Hard, (0.0, 1e6)));
        let (mut plane, id) = ControlPlane::single("q", Decider::Deputy(Box::new(sc)));
        let _ = plane.decide(id, 0, 10.0);
    }

    #[test]
    fn channel_lookup_by_name() {
        let (plane, id) = ControlPlane::single("a.b.c", Decider::Static(1.0));
        assert_eq!(plane.channel_id("a.b.c"), Some(id));
        assert_eq!(plane.channel_id("nope"), None);
        assert_eq!(plane.channel_count(), 1);
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultWindow};
    use crate::guard::GuardSet;
    use smartconf_core::{Controller, Goal};

    fn hard_controller(bounds: (f64, f64), initial: f64) -> Controller {
        let goal = Goal::new("m", 100.0).with_hardness(Hardness::Hard).unwrap();
        Controller::new(1.0, 0.5, goal, 0.1, bounds, initial).unwrap()
    }

    fn chaos_plane(plan: FaultPlan, guard: GuardPolicy) -> (ControlPlane, ChannelId) {
        let sc = SmartConf::new("c", hard_controller((0.0, 1000.0), 50.0));
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        plane.enable_chaos(ChaosSpec::new(7, plan).with_guard(guard));
        (plane, id)
    }

    fn guard_bits(plane: &ControlPlane, epoch: u64) -> GuardSet {
        plane
            .log()
            .events_for("c")
            .find(|e| e.epoch == epoch)
            .map(|e| e.guards)
            .unwrap()
    }

    #[test]
    fn clean_plan_means_dormant_guards() {
        let (mut plane, id) = chaos_plane(FaultPlan::new(), GuardPolicy::new());
        // Closed loop: m = setting, converging to the virtual target 90.
        let mut setting = 50.0;
        for step in 0..50u64 {
            setting = plane.decide(id, step, setting);
        }
        let s = plane.log().summary("c").unwrap();
        assert_eq!(s.faults_injected, 0);
        assert_eq!(s.guard_activations, 0);
        assert_eq!(s.fallback_epochs, 0);
        assert!((setting - 90.0).abs() < 1.0);
    }

    #[test]
    fn dropout_holds_then_watchdog_reverts() {
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::SensorDropout, 5, u64::MAX));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new().watchdog_epochs(3));
        let mut last_healthy = 0.0;
        for step in 0..12u64 {
            let s = plane.decide(id, step, 40.0);
            if step == 4 {
                last_healthy = s;
            }
        }
        // Missing epochs hold, then the watchdog reverts to the last
        // healthy setting and pins there.
        assert!(guard_bits(&plane, 5).contains(GuardSet::MISSED));
        assert!(!guard_bits(&plane, 5).contains(GuardSet::WATCHDOG));
        let wd = guard_bits(&plane, 7);
        assert!(wd.contains(GuardSet::WATCHDOG));
        let last = plane.log().last_setting("c").unwrap();
        assert_eq!(last, last_healthy);
    }

    #[test]
    fn nan_and_spike_readings_are_rejected() {
        let plan = FaultPlan::new()
            .window(FaultWindow::new(FaultKind::SensorNan, 6, 7))
            .window(FaultWindow::new(
                FaultKind::SensorSpike { factor: 50.0 },
                8,
                9,
            ));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new());
        let mut settings = Vec::new();
        for step in 0..10u64 {
            // Vary the reading so natural repeats never accumulate.
            settings.push(plane.decide(id, step, 40.0 + step as f64));
        }
        for bad in [6usize, 8] {
            let bits = guard_bits(&plane, bad as u64);
            assert!(bits.contains(GuardSet::REJECTED), "epoch {bad}");
            // The rejected reading never moved the controller: the
            // setting holds at the previous epoch's decision.
            assert_eq!(settings[bad], settings[bad - 1]);
        }
        // Clean epochs in between are unaffected.
        assert!(guard_bits(&plane, 7).is_empty());
    }

    #[test]
    fn stale_repeats_trigger_hold_only_when_off_target() {
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::SensorStale, 3, u64::MAX));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new().stale_detection(3, 0.05));
        for step in 0..12u64 {
            // Fresh readings vary; from epoch 3 the injected staleness
            // freezes the delivered value far from the 90 target.
            plane.decide(id, step, 30.0 + step as f64);
        }
        // The repeat run starts at the fault window; the hold engages
        // once it reaches the 3-repeat threshold, not immediately.
        assert!(!guard_bits(&plane, 3).contains(GuardSet::STALE_HOLD));
        assert!(guard_bits(&plane, 8).contains(GuardSet::STALE_HOLD));
    }

    #[test]
    fn quantized_on_target_repeats_do_not_false_trigger() {
        // No faults at all: the plant legitimately repeats a quantized
        // reading near the target (HD4995's limit×20µs blocks).
        let (mut plane, id) = chaos_plane(
            FaultPlan::new(),
            GuardPolicy::new().stale_detection(3, 0.05),
        );
        for step in 0..20u64 {
            plane.decide(id, step, 90.0); // exactly the virtual target
        }
        let s = plane.log().summary("c").unwrap();
        assert_eq!(s.guard_activations, 0, "no stale hold on quantized repeats");
    }

    #[test]
    fn saturation_caps_and_back_calculates() {
        let plan = FaultPlan::new().window(FaultWindow::new(
            FaultKind::ActuatorSaturate { frac: 0.1 },
            0,
            u64::MAX,
        ));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new());
        // Measured far below target: the controller keeps growing and
        // soon wants to pass the 10% cap (0 + 0.1×1000 = 100).
        let mut s = 0.0;
        for step in 0..4u64 {
            s = plane.decide(id, step, step as f64);
        }
        assert_eq!(s, 100.0, "applied setting capped at saturation");
        assert!(guard_bits(&plane, 3).contains(GuardSet::ANTI_WINDUP));
        // Back-calculation: the controller's integrator sits at the cap,
        // not at its unconstrained command.
        match plane.decider(id) {
            Decider::Direct(sc) => assert_eq!(sc.controller().current(), 100.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn lag_defers_application_by_k_epochs() {
        let plan = FaultPlan::new().window(FaultWindow::new(
            FaultKind::ActuatorLag { epochs: 2 },
            3,
            u64::MAX,
        ));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new());
        let mut applied = Vec::new();
        for step in 0..8u64 {
            // Keep the measurement moving so each decision differs.
            applied.push(plane.decide(id, step, 20.0 + step as f64));
        }
        // At epoch 3 the lag starts: the applied setting freezes at the
        // epoch-2 decision while new commands queue.
        assert_eq!(applied[3], applied[2]);
        assert_eq!(applied[4], applied[2]);
        // By epoch 5 the epoch-3 command matures (2 epochs late).
        assert_ne!(applied[5], applied[2]);
        assert!(guard_bits(&plane, 3).is_empty()); // lag is a fault, not a guard
    }

    #[test]
    fn goal_flap_restores_scenario_target() {
        let plan =
            FaultPlan::new().window(FaultWindow::new(FaultKind::GoalFlap { frac: 0.15 }, 2, 5));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new());
        let target_at = |plane: &ControlPlane, epoch: u64| {
            plane
                .log()
                .events_for("c")
                .find(|e| e.epoch == epoch)
                .unwrap()
                .target
        };
        for step in 0..8u64 {
            plane.decide(id, step, 40.0);
        }
        // λ 0.1: virtual target 90 normally, 85×0.9 = 76.5 while flapped.
        assert_eq!(target_at(&plane, 1), 90.0);
        assert!((target_at(&plane, 3) - 76.5).abs() < 1e-9);
        assert_eq!(target_at(&plane, 6), 90.0);
    }

    #[test]
    fn scenario_set_goal_survives_flap_restore() {
        let plan =
            FaultPlan::new().window(FaultWindow::new(FaultKind::GoalFlap { frac: 0.15 }, 2, 5));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new());
        for step in 0..3u64 {
            plane.decide(id, step, 40.0);
        }
        // Mid-flap, the scenario retargets from 100 to 200.
        plane.set_goal(id, 200.0).unwrap();
        for step in 3..8u64 {
            plane.decide(id, step, 40.0);
        }
        // After the flap window the channel steers to the NEW target's
        // virtual goal (180), not back to the stale 90.
        let last = plane.log().events_for("c").find(|e| e.epoch == 7).unwrap();
        assert_eq!(last.target, 180.0);
    }

    #[test]
    fn restart_resets_controller_and_requests_reprofile() {
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::PlantRestart, 4, 5));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new());
        for step in 0..4u64 {
            plane.decide(id, step, 0.0); // drives the setting far from 50
        }
        assert!(!plane.reprofile_requested(id));
        plane.decide(id, 4, 0.0);
        assert!(plane.reprofile_requested(id));
        assert!(guard_bits(&plane, 4).contains(GuardSet::REPROFILE));
        assert_eq!(plane.restart_count(id), 1);
        assert!(plane.take_plant_restart(id));
        assert!(!plane.take_plant_restart(id), "notification consumed");
        assert!(plane.take_reprofile(id));
        assert!(!plane.reprofile_requested(id), "request consumed");
    }

    #[test]
    fn adaptive_restart_relearns_in_place_without_reprofile() {
        // The frozen path's restart recovery asks for re-profiling
        // (`restart_resets_controller_and_requests_reprofile` above);
        // an adaptive channel instead resets its estimator's certainty
        // in place and keeps running — no REPROFILE request may ever be
        // raised, and the log must carry RELEARN instead.
        use smartconf_core::{ControllerBuilder, GainModel, PerfModel};
        let goal = Goal::new("m", 100.0).with_hardness(Hardness::Hard).unwrap();
        let ctl = ControllerBuilder::new(goal)
            .alpha(1.0)
            .pole(0.5)
            .lambda(0.1)
            .bounds(0.0, 1000.0)
            .initial(50.0)
            .adaptive()
            .build()
            .unwrap();
        let sc = SmartConf::new("c", ctl);
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::PlantRestart, 4, 5));
        plane.enable_chaos(ChaosSpec::new(7, plan).with_guard(GuardPolicy::new()));
        for step in 0..4u64 {
            plane.decide(id, step, 40.0);
        }
        let observed_before = match plane.decider(id) {
            Decider::Direct(c) => c.controller().model().observations(),
            _ => unreachable!(),
        };
        assert!(observed_before > 0, "estimator learned before the restart");
        plane.decide(id, 4, 0.0);
        assert!(
            !plane.reprofile_requested(id),
            "adaptive must not re-profile"
        );
        let bits = guard_bits(&plane, 4);
        assert!(bits.contains(GuardSet::RELEARN));
        assert!(!bits.contains(GuardSet::REPROFILE));
        assert!(plane.take_plant_restart(id));
        match plane.decider(id) {
            Decider::Direct(c) => {
                let model = c.controller().model();
                assert!(matches!(model, GainModel::Rls(_)));
                // The restart epoch's own measurement already taught
                // the freshly reset estimator one sample.
                assert!(
                    model.observations() <= 1,
                    "relearn must reset the estimator's observation count, got {}",
                    model.observations()
                );
            }
            _ => unreachable!(),
        }
        // The channel keeps deciding — and the estimator re-converges —
        // with no profiling pass in between.
        for step in 5..12u64 {
            plane.decide(id, step, 40.0);
        }
        match plane.decider(id) {
            Decider::Direct(c) => {
                assert!(c.controller().model().observations() >= 4);
            }
            _ => unreachable!(),
        }
        assert!(!plane.reprofile_requested(id));
    }

    #[test]
    fn model_doubt_parks_low_confidence_adaptive_channel_on_fallback() {
        use smartconf_core::{ControllerBuilder, PerfModel};
        let goal = Goal::new("m", 100.0).with_hardness(Hardness::Hard).unwrap();
        let ctl = ControllerBuilder::new(goal)
            .alpha(1.0)
            .pole(0.5)
            .lambda(0.1)
            .bounds(0.0, 1000.0)
            .initial(50.0)
            .adaptive()
            .build()
            .unwrap();
        let sc = SmartConf::new("c", ctl);
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        let guard = GuardPolicy::new()
            .fallback_setting("c", 25.0)
            .confidence_floor(0.9);
        plane.enable_chaos(ChaosSpec::new(7, FaultPlan::new()).with_guard(guard));
        // Wildly inconsistent measurements crash the estimator's
        // confidence below the (deliberately high) floor.
        for (step, measured) in [(0u64, 40.0), (1, 5.0), (2, 80.0), (3, 3.0), (4, 70.0)] {
            plane.decide(id, step, measured);
        }
        let confidence = match plane.decider(id) {
            Decider::Direct(c) => c.controller().model().confidence(),
            _ => unreachable!(),
        };
        assert!(confidence < 0.9, "confidence {confidence} not collapsed");
        let doubted = (0..5u64)
            .find(|&e| guard_bits(&plane, e).contains(GuardSet::MODEL_DOUBT))
            .expect("model doubt fired");
        assert!(guard_bits(&plane, doubted).contains(GuardSet::FALLBACK_ENTER));
        assert_eq!(plane.log().last_setting("c"), Some(25.0));
    }

    #[test]
    fn divergence_degrades_to_fallback_and_reengages() {
        let guard = GuardPolicy::new()
            .divergence(3, 5)
            .fallback_setting("c", 25.0);
        let (mut plane, id) = chaos_plane(FaultPlan::new(), guard);
        // Error grows on the violating side of the hard goal for three
        // consecutive epochs (measured beyond the virtual target 90).
        for (step, measured) in [(0u64, 95.0), (1, 105.0), (2, 120.0)] {
            plane.decide(id, step, measured);
        }
        let enter = guard_bits(&plane, 2);
        assert!(enter.contains(GuardSet::FALLBACK_ENTER));
        assert_eq!(plane.log().last_setting("c"), Some(25.0));
        // The fallback holds through the cooldown even as readings recover.
        for step in 3..7u64 {
            let s = plane.decide(id, step, 40.0);
            assert_eq!(s, 25.0, "epoch {step} must hold the fallback");
            assert!(guard_bits(&plane, step).contains(GuardSet::FALLBACK));
        }
        // Cooldown over (entered at 2, until 7): the controller re-engages.
        let s = plane.decide(id, 7, 40.0);
        assert!(guard_bits(&plane, 7).contains(GuardSet::REENGAGE));
        assert_ne!(s, 25.0);
        let summary = plane.log().summary("c").unwrap();
        assert_eq!(summary.fallback_epochs, 5);
    }

    #[test]
    fn sensor_voting_feeds_the_controller_through_corruption() {
        // A NaN burst from epoch 6: without voting every burst epoch is
        // MISSED; with a 3-wide vote the guard substitutes the median of
        // the recent admitted readings and the controller stays fed.
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::SensorNan, 6, 10));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new().sensor_vote(3));
        for step in 0..12u64 {
            // Vary the reading so natural repeats never accumulate.
            plane.decide(id, step, 40.0 + step as f64);
        }
        for bad in 6u64..10 {
            let bits = guard_bits(&plane, bad);
            assert!(bits.contains(GuardSet::REJECTED), "epoch {bad}");
            assert!(bits.contains(GuardSet::VOTED), "epoch {bad}");
            assert!(
                !bits.contains(GuardSet::MISSED),
                "epoch {bad}: voted epochs are fed, not missed"
            );
        }
        // The controller was fed a finite consensus and kept stepping
        // toward the goal straight through the burst (a missed epoch
        // would have held the previous setting).
        let setting_at = |epoch: u64| {
            plane
                .log()
                .events_for("c")
                .find(|e| e.epoch == epoch)
                .unwrap()
                .setting
        };
        assert_ne!(setting_at(7), setting_at(6));
        assert_ne!(setting_at(8), setting_at(7));
        // The delivered (corrupt) reading still reaches the log raw.
        let ev = plane.log().events_for("c").find(|e| e.epoch == 8).unwrap();
        assert!(ev.measured.is_nan());
    }

    #[test]
    fn voting_with_cold_window_still_goes_missed() {
        // Corruption before the vote window ever warms up: no consensus
        // exists, so the guard falls back to the historical missed path.
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::SensorNan, 1, 3));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new().sensor_vote(5));
        for step in 0..4u64 {
            plane.decide(id, step, 40.0 + step as f64);
        }
        let bits = guard_bits(&plane, 1);
        assert!(bits.contains(GuardSet::REJECTED));
        assert!(bits.contains(GuardSet::MISSED));
        assert!(!bits.contains(GuardSet::VOTED));
    }

    #[test]
    fn voting_is_suspended_through_a_fallback_hold() {
        // Warm the vote window, drive the channel into divergence
        // fallback, then corrupt a reading mid-hold: the pre-entry
        // consensus was flushed at entry and hold epochs never buffer,
        // so the rejection goes missed — a hold actively drains the
        // plant, and a drained-era median must never steer re-engage.
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::SensorNan, 5, 6));
        let guard = GuardPolicy::new()
            .sensor_vote(2)
            .divergence(2, 8)
            .fallback_setting("c", 25.0);
        let (mut plane, id) = chaos_plane(plan, guard);
        plane.decide(id, 0, 40.0);
        plane.decide(id, 1, 41.0);
        // Worsening hard-goal violations (target 100 from chaos_plane's
        // controller would not violate at 40) — push over the target.
        plane.decide(id, 2, 105.0);
        plane.decide(id, 3, 110.0);
        plane.decide(id, 4, 115.0);
        let entered = (0..=4u64).find(|&e| guard_bits(&plane, e).contains(GuardSet::FALLBACK));
        let entered = entered.expect("divergence must enter fallback");
        // Epoch 5's injected NaN lands inside the hold.
        plane.decide(id, 5, 50.0);
        let bits = guard_bits(&plane, 5);
        assert!(bits.contains(GuardSet::FALLBACK), "epoch 5 still holds");
        assert!(bits.contains(GuardSet::REJECTED), "NaN still rejected");
        assert!(
            bits.contains(GuardSet::MISSED) && !bits.contains(GuardSet::VOTED),
            "hold epochs must not vote (entered at {entered})"
        );
    }

    #[test]
    fn repeated_divergence_backs_off_deterministically() {
        // Satellite: the re-engage backoff ladder in the full decide
        // path. First divergence dwells the base cooldown (5), the
        // second dwells double (10) — and a jitter-free schedule means
        // these edges land on exact epochs.
        let guard = GuardPolicy::new()
            .divergence(3, 5)
            .reengage_backoff(2)
            .fallback_setting("c", 25.0);
        let (mut plane, id) = chaos_plane(FaultPlan::new(), guard);
        let diverge = [95.0, 105.0, 120.0];
        // First divergence: enters at epoch 2, dwells 5, re-engages at 7.
        for (step, m) in diverge.iter().enumerate() {
            plane.decide(id, step as u64, *m);
        }
        assert!(guard_bits(&plane, 2).contains(GuardSet::FALLBACK_ENTER));
        for step in 3..7u64 {
            plane.decide(id, step, 40.0);
            assert!(guard_bits(&plane, step).contains(GuardSet::FALLBACK));
        }
        plane.decide(id, 7, 40.0);
        assert!(guard_bits(&plane, 7).contains(GuardSet::REENGAGE));
        // Second divergence: enters at epoch 10, dwells 10 (doubled), so
        // epoch 15 — past where the base cooldown would have re-engaged —
        // still holds the fallback, and re-engage lands at epoch 20.
        for (i, m) in diverge.iter().enumerate() {
            plane.decide(id, 8 + i as u64, *m);
        }
        assert!(guard_bits(&plane, 10).contains(GuardSet::FALLBACK_ENTER));
        for step in 11..20u64 {
            plane.decide(id, step, 40.0);
            assert!(
                guard_bits(&plane, step).contains(GuardSet::FALLBACK),
                "epoch {step} must still dwell under the doubled cooldown"
            );
        }
        plane.decide(id, 20, 40.0);
        assert!(guard_bits(&plane, 20).contains(GuardSet::REENGAGE));
    }

    #[test]
    fn chaos_event_fields_reach_the_log() {
        let plan = FaultPlan::new().window(FaultWindow::new(FaultKind::SensorDropout, 1, 2));
        let (mut plane, id) = chaos_plane(plan, GuardPolicy::new());
        plane.decide(id, 0, 40.0);
        plane.decide(id, 1, 40.0);
        let ev = plane.log().events_for("c").find(|e| e.epoch == 1).unwrap();
        assert!(ev.faults.contains(crate::FaultSet::DROPOUT));
        assert!(ev.measured.is_nan(), "dropped reading logged as NaN");
        let s = plane.log().summary("c").unwrap();
        assert_eq!(s.faults_injected, 1);
    }

    #[test]
    fn static_channels_pass_through_chaos() {
        let (mut plane, id) = ControlPlane::single("s", Decider::Static(30.0));
        plane.enable_chaos(ChaosSpec::new(
            1,
            FaultPlan::new().window(FaultWindow::new(FaultKind::PlantRestart, 1, 2)),
        ));
        assert_eq!(plane.decide(id, 0, 10.0), 30.0);
        assert_eq!(plane.decide(id, 1, 10.0), 30.0);
        assert_eq!(plane.restart_count(id), 1);
        assert!(plane.take_plant_restart(id));
    }
}

#[cfg(test)]
mod chaos_proptests {
    use super::*;
    use crate::fault::{FaultClass, FaultPlan};
    use crate::guard::GuardPolicy;
    use proptest::prelude::*;
    use smartconf_core::{Controller, Goal};

    fn run_chaos_closed_loop(
        seed: u64,
        plan: FaultPlan,
        fallback: f64,
        epochs: u64,
    ) -> Vec<(u64, f64, f64)> {
        let goal = Goal::new("m", 400.0).with_hardness(Hardness::Hard).unwrap();
        let ctl = Controller::new(2.0, 0.3, goal, 0.1, (0.0, 180.0), 20.0).unwrap();
        let sc = SmartConf::new("c", ctl);
        let (mut plane, id) = ControlPlane::single("c", Decider::Direct(Box::new(sc)));
        plane.enable_chaos(
            ChaosSpec::new(seed, plan).with_guard(
                GuardPolicy::new()
                    .divergence(3, 10)
                    .fallback_setting("c", fallback),
            ),
        );
        let mut setting = 20.0;
        let mut out = Vec::new();
        for step in 0..epochs {
            // Plant: m = 2·setting plus a slow disturbance ramp.
            let measured = 2.0 * setting + (step as f64 % 37.0);
            setting = plane.decide(id, step, measured);
            out.push((step, setting, measured));
        }
        out
    }

    proptest! {
        /// Satellite property (b): whatever the fault class and seed, the
        /// guard ladder never emits a setting outside the controller's
        /// profiled bounds — including the fallback path.
        #[test]
        fn chaos_settings_never_leave_controller_bounds(
            seed in 0u64..1_000,
            class_idx in 0usize..FaultClass::ALL.len(),
            fallback in -50.0f64..250.0, // deliberately allows out-of-bounds declarations
        ) {
            let plan = FaultClass::ALL[class_idx].standard_plan();
            for (step, setting, _) in run_chaos_closed_loop(seed, plan, fallback, 400) {
                prop_assert!(
                    (0.0..=180.0).contains(&setting),
                    "epoch {} setting {} outside bounds", step, setting
                );
            }
        }

        /// Satellite property (a): a chaos run is a pure function of
        /// `(seed, plan)` — replaying it yields identical trajectories,
        /// and different seeds give the injector different rolls.
        #[test]
        fn chaos_runs_replay_exactly(
            seed in 0u64..10_000,
            class_idx in 0usize..FaultClass::ALL.len(),
        ) {
            let plan = FaultClass::ALL[class_idx].standard_plan();
            let a = run_chaos_closed_loop(seed, plan.clone(), 30.0, 300);
            let b = run_chaos_closed_loop(seed, plan, 30.0, 300);
            prop_assert_eq!(a, b);
        }
    }
}
