//! Simulated MapReduce substrate.
//!
//! Hosts the paper's MR2820 case study: `local.dir.minspacestart` decides
//! whether a worker has enough free local disk to accept a map task.
//!
//! * too **small** — tasks start on nearly-full disks; their spill files
//!   plus other tenants' fluctuating disk usage run the disk out
//!   (out-of-disk, the hard failure);
//! * too **big** — workers sit idle whenever free space dips below the
//!   reserve, and jobs take longer.
//!
//! Map tasks spill intermediate data to local disk while they run; the
//! spill lives on until the shuffle fetches it. The **conditional,
//! direct, hard** PerfConf (`Y-Y-Y`) is adjusted by a controller on the
//! master and shipped to the workers — the paper's Table 7 notes this
//! master-to-slave delivery as part of MR2820's integration cost.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod disk;
pub mod scenario;

pub use cluster::{ClusterEvent, ClusterModel};
pub use disk::WorkerDisk;
pub use scenario::Mr2820;
