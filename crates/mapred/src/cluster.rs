//! The cluster model: master, workers, task lifecycle, disk dynamics.

use std::collections::VecDeque;

use smartconf_metrics::TimeSeries;
use smartconf_runtime::{ChannelId, ChaosSpec, ControlPlane, Decider, Sensed};
use smartconf_simkernel::{BackgroundChurn, Context, Model, SimDuration, SimTime};
use smartconf_workload::{MapTask, WordCountJob};

use crate::WorkerDisk;

/// Events of the cluster model.
#[derive(Debug)]
pub enum ClusterEvent {
    /// Master scheduling pass: assign pending tasks to eligible workers.
    Assign,
    /// Advance running tasks' spill output.
    SpillTick,
    /// A task finished on a worker.
    TaskDone {
        /// Worker index.
        worker: usize,
        /// Index into the running-task table.
        slot_key: u64,
    },
    /// The shuffle fetched a finished task's spill.
    ShuffleDone {
        /// Worker index.
        worker: usize,
        /// Spill bytes to release.
        bytes: u64,
    },
    /// Per-worker co-tenant churn update.
    ChurnTick,
    /// Periodic series sampling.
    Sample,
}

#[derive(Debug)]
struct RunningTask {
    key: u64,
    worker: usize,
    /// The task description, kept so an injected cluster restart can
    /// requeue the task from scratch.
    task: MapTask,
    spill_total: u64,
    spill_written: u64,
    duration: SimDuration,
    started: SimTime,
}

/// One worker's state.
#[derive(Debug)]
struct Worker {
    disk: WorkerDisk,
    churn: BackgroundChurn,
    busy_slots: u32,
}

/// The MapReduce cluster simulation model.
#[derive(Debug)]
pub struct ClusterModel {
    workers: Vec<Worker>,
    slots_per_worker: u32,
    /// The control plane owning the reserve channel. For SmartConf the
    /// deputy is the worst per-worker committed disk usage (MB); the
    /// transducer maps the desired usage back to the reserve,
    /// `minspace = capacity − desired` (paper §5.3's threshold pattern).
    /// The result is shipped to the workers at assignment time.
    pub(crate) plane: ControlPlane,
    chan: ChannelId,
    minspace: u64,
    /// Jobs to run back-to-back.
    jobs: VecDeque<Vec<MapTask>>,
    pending: VecDeque<MapTask>,
    running: Vec<RunningTask>,
    next_key: u64,
    /// Outstanding tasks of the current job (running + pending + shuffling
    /// does not count — a job is done when all its tasks finished).
    tasks_left_in_job: usize,
    /// Processing rate for map input, bytes/second.
    process_rate: f64,
    /// Delay between task completion and its spill being fetched.
    shuffle_delay: SimDuration,
    /// Completion time of the final job.
    pub(crate) finished_at: Option<SimTime>,
    pub(crate) crashed: Option<SimTime>,
    pub(crate) goal_mb: f64,
    pub(crate) goal_violated: bool,
    pub(crate) used_series: TimeSeries,
    pub(crate) conf_series: TimeSeries,
    horizon: SimTime,
}

impl ClusterModel {
    /// Creates a cluster.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        num_workers: usize,
        slots_per_worker: u32,
        disk_capacity: u64,
        disk_base: u64,
        churn: BackgroundChurn,
        decider: Decider,
        initial_minspace: u64,
        jobs: Vec<Vec<MapTask>>,
        process_rate: f64,
        shuffle_delay: SimDuration,
        goal_mb: f64,
        horizon: SimTime,
    ) -> Self {
        let workers = (0..num_workers)
            .map(|_| Worker {
                disk: WorkerDisk::new(disk_capacity, disk_base),
                churn: churn.clone(),
                busy_slots: 0,
            })
            .collect();
        let mut jobs: VecDeque<Vec<MapTask>> = jobs.into_iter().collect();
        let first = jobs.pop_front().unwrap_or_default();
        let tasks_left = first.len();
        // Declared sensing period (metadata for event-driven embeddings):
        // the controller runs at assignment time, so the nominal quantum
        // is the master's assignment tick.
        let (plane, chan) = ControlPlane::single_with_period(
            "local.dir.minspacestart_mb",
            decider,
            ASSIGN_TICK.as_micros(),
        );
        ClusterModel {
            workers,
            slots_per_worker,
            plane,
            chan,
            minspace: initial_minspace,
            jobs,
            pending: first.into_iter().collect(),
            running: Vec::new(),
            next_key: 0,
            tasks_left_in_job: tasks_left,
            process_rate,
            shuffle_delay,
            finished_at: None,
            crashed: None,
            goal_mb,
            goal_violated: false,
            used_series: TimeSeries::new("worst_worker_disk_mb"),
            conf_series: TimeSeries::new("local.dir.minspacestart_mb"),
            horizon,
        }
    }

    /// Current reserve threshold in bytes.
    pub fn minspace(&self) -> u64 {
        self.minspace
    }

    /// Arms the fault-injection plane (chaos mode) on the reserve channel.
    pub fn enable_chaos(&mut self, spec: ChaosSpec) {
        self.plane.enable_chaos(spec);
    }

    fn worst_used_mb(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.disk.used_mb())
            .fold(0.0, f64::max)
    }

    /// The SmartConf sensor: worst per-worker disk usage *including* the
    /// spill bytes already committed by running tasks but not yet
    /// written. The master knows each task's expected spill, so this is
    /// exactly the kind of sensor the paper asks developers to provide
    /// (§4.1.1) — without it the controller would chase a plant with a
    /// multi-second actuation lag.
    fn worst_committed_mb(&self) -> f64 {
        (0..self.workers.len())
            .map(|wi| {
                let pending: u64 = self
                    .running
                    .iter()
                    .filter(|t| t.worker == wi)
                    .map(|t| t.spill_total - t.spill_written)
                    .sum();
                self.workers[wi].disk.used_mb() + pending as f64 / 1e6
            })
            .fold(0.0, f64::max)
    }

    /// The controller runs on the master at assignment time (conditional
    /// PerfConf: it only takes effect when tasks are being placed).
    fn control_step(&mut self, now: SimTime) {
        // Metric and deputy coincide: the constrained quantity *is* the
        // threshold's deputy (disk usage), so the model gain on the
        // deputy is exactly 1.
        let worst = self.worst_committed_mb();
        let mb = self
            .plane
            .decide(
                self.chan,
                now.as_micros(),
                Sensed::with_deputy(worst, worst),
            )
            .max(0.0);
        self.minspace = (mb * 1e6) as u64;
        if self.plane.take_plant_restart(self.chan) {
            // A cluster restart kills in-flight tasks: their partial
            // spills are cleaned off the local dirs and the tasks are
            // requeued. Spills of finished tasks survive for the shuffle.
            let killed: Vec<RunningTask> = self.running.drain(..).collect();
            for t in killed {
                self.workers[t.worker].disk.release_spill(t.spill_written);
                self.workers[t.worker].busy_slots -= 1;
                self.pending.push_front(t.task);
            }
        }
    }

    fn check_ood(&mut self, ctx: &mut Context<'_, ClusterEvent>) {
        if self.crashed.is_none() && self.workers.iter().any(|w| w.disk.is_full()) {
            self.crashed = Some(ctx.now());
            let t = ctx.now().as_micros();
            self.used_series.push(t, self.worst_used_mb());
            ctx.halt();
        }
    }

    fn try_assign(&mut self, ctx: &mut Context<'_, ClusterEvent>) {
        if self.pending.is_empty() {
            return;
        }
        loop {
            // Re-run the controller per admission: each accepted task
            // changes the committed-spill sensor reading.
            self.control_step(ctx.now());
            let Some(task) = self.pending.front().copied() else {
                break;
            };
            // Hadoop's minspacestart compares the *observed* free space
            // against the threshold — it cannot see the spill bytes that
            // running tasks will still write. SmartConf's sensor feeds
            // committed usage to the controller, which folds that
            // foresight into the threshold it sets; a static threshold
            // must cover in-flight spills by itself.
            let smart = self.plane.decider(self.chan).is_smart();
            let committed_free = |wi: usize| -> u64 {
                let pending_spill: u64 = self
                    .running
                    .iter()
                    .filter(|t| t.worker == wi)
                    .map(|t| t.spill_total - t.spill_written)
                    .sum();
                let free = self.workers[wi].disk.free_bytes();
                if smart {
                    free.saturating_sub(pending_spill)
                } else {
                    free
                }
            };
            // Pick the eligible worker with the most (committed-)free
            // space.
            let candidate = (0..self.workers.len())
                .filter(|&wi| {
                    self.workers[wi].busy_slots < self.slots_per_worker
                        && committed_free(wi) >= self.minspace
                })
                .max_by_key(|&wi| committed_free(wi));
            let Some(wi) = candidate else {
                break;
            };
            self.pending.pop_front();
            self.workers[wi].busy_slots += 1;
            let duration = SimDuration::from_secs_f64(task.input_bytes as f64 / self.process_rate);
            let key = self.next_key;
            self.next_key += 1;
            self.running.push(RunningTask {
                key,
                worker: wi,
                task,
                spill_total: task.spill_bytes,
                spill_written: 0,
                duration,
                started: ctx.now(),
            });
            ctx.schedule_in(
                duration,
                ClusterEvent::TaskDone {
                    worker: wi,
                    slot_key: key,
                },
            );
        }
    }
}

/// Spill-advance granularity.
const SPILL_TICK: SimDuration = SimDuration::from_millis(100);
/// Co-tenant churn granularity.
const CHURN_TICK: SimDuration = SimDuration::from_millis(100);
/// Master scheduling period.
const ASSIGN_TICK: SimDuration = SimDuration::from_millis(200);
/// Series sampling period.
const SAMPLE_TICK: SimDuration = SimDuration::from_millis(250);

impl Model for ClusterModel {
    type Event = ClusterEvent;

    fn handle(&mut self, event: ClusterEvent, ctx: &mut Context<'_, ClusterEvent>) {
        match event {
            ClusterEvent::Assign => {
                self.try_assign(ctx);
                if self.finished_at.is_none() {
                    ctx.schedule_in(ASSIGN_TICK, ClusterEvent::Assign);
                }
            }
            ClusterEvent::SpillTick => {
                for task in &mut self.running {
                    let elapsed = ctx.now().duration_since(task.started).as_micros() as f64;
                    let frac = (elapsed / task.duration.as_micros().max(1) as f64).min(1.0);
                    let should_have = (task.spill_total as f64 * frac) as u64;
                    let delta = should_have.saturating_sub(task.spill_written);
                    if delta > 0 {
                        task.spill_written += delta;
                        self.workers[task.worker].disk.add_spill(delta);
                    }
                }
                self.check_ood(ctx);
                if self.finished_at.is_none() && self.crashed.is_none() {
                    ctx.schedule_in(SPILL_TICK, ClusterEvent::SpillTick);
                }
            }
            ClusterEvent::TaskDone { worker, slot_key } => {
                if let Some(pos) = self.running.iter().position(|t| t.key == slot_key) {
                    let task = self.running.swap_remove(pos);
                    // Write out any spill remainder.
                    let remainder = task.spill_total - task.spill_written;
                    if remainder > 0 {
                        self.workers[worker].disk.add_spill(remainder);
                    }
                    self.workers[worker].busy_slots -= 1;
                    self.tasks_left_in_job -= 1;
                    ctx.schedule_in(
                        self.shuffle_delay,
                        ClusterEvent::ShuffleDone {
                            worker,
                            bytes: task.spill_total,
                        },
                    );
                    self.check_ood(ctx);
                    if self.tasks_left_in_job == 0 {
                        match self.jobs.pop_front() {
                            Some(next) => {
                                self.tasks_left_in_job = next.len();
                                self.pending = next.into_iter().collect();
                            }
                            None => {
                                self.finished_at = Some(ctx.now());
                            }
                        }
                    }
                    self.try_assign(ctx);
                }
            }
            ClusterEvent::ShuffleDone { worker, bytes } => {
                self.workers[worker].disk.release_spill(bytes);
                self.try_assign(ctx);
            }
            ClusterEvent::ChurnTick => {
                for w in &mut self.workers {
                    let level = w.churn.tick(ctx.rng());
                    w.disk.set_other(level);
                }
                self.check_ood(ctx);
                if self.finished_at.is_none() && self.crashed.is_none() {
                    ctx.schedule_in(CHURN_TICK, ClusterEvent::ChurnTick);
                }
            }
            ClusterEvent::Sample => {
                let worst = self.worst_used_mb();
                if worst > self.goal_mb {
                    self.goal_violated = true;
                }
                let t = ctx.now().as_micros();
                self.used_series.push(t, worst);
                self.conf_series.push(t, self.minspace as f64 / 1e6);
                if ctx.now() < self.horizon && self.finished_at.is_none() && self.crashed.is_none()
                {
                    ctx.schedule_in(SAMPLE_TICK, ClusterEvent::Sample);
                }
            }
        }
    }
}

/// Builds the task lists for a job description with a given seed.
pub(crate) fn materialize_job(
    job: &WordCountJob,
    rng: &mut smartconf_simkernel::SimRng,
) -> Vec<MapTask> {
    job.map_tasks(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartconf_simkernel::{SimRng, Simulation};

    fn run_cluster(minspace_mb: u64, capacity_mb: u64, churn_mean_mb: f64) -> ClusterModel {
        let mut rng = SimRng::seed_from_u64(3);
        let job1 = materialize_job(&WordCountJob::new(640_000_000, 64_000_000, 2), &mut rng);
        let job2 = materialize_job(&WordCountJob::new(640_000_000, 128_000_000, 2), &mut rng);
        let horizon = SimTime::from_secs(600);
        let model = ClusterModel::new(
            2,
            2,
            capacity_mb * 1_000_000,
            100_000_000,
            BackgroundChurn::with_spikes(churn_mean_mb * 1e6, 1.5e6, 0.002, 4e6, 6e6)
                .with_reversion(0.02),
            Decider::Static(minspace_mb as f64),
            minspace_mb * 1_000_000,
            vec![job1, job2],
            20_000_000.0,
            SimDuration::from_secs(5),
            f64::MAX,
            horizon,
        );
        let mut sim = Simulation::new(model, 3);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::Assign);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::SpillTick);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::ChurnTick);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::Sample);
        sim.run_until(horizon);
        sim.into_model()
    }

    #[test]
    fn jobs_complete_with_roomy_disk() {
        let m = run_cluster(50, 2_000, 150.0);
        assert!(m.crashed.is_none());
        let t = m.finished_at.expect("both jobs complete");
        // 1280 MB of input at 20 MB/s over 4 effective slots: tens of
        // seconds, far below the 600 s horizon.
        assert!(t.as_secs_f64() > 10.0 && t.as_secs_f64() < 300.0);
    }

    #[test]
    fn bigger_reserve_slows_the_job() {
        let fast = run_cluster(50, 2_000, 150.0);
        let slow = run_cluster(1_720, 2_000, 150.0);
        let tf = fast.finished_at.expect("completes").as_secs_f64();
        let ts = slow.finished_at.expect("completes").as_secs_f64();
        assert!(
            ts > tf,
            "reserve 1720MB ({ts}s) should be slower than 50MB ({tf}s)"
        );
    }

    #[test]
    fn tiny_disk_with_no_reserve_goes_ood() {
        let m = run_cluster(0, 420, 200.0);
        assert!(
            m.crashed.is_some(),
            "spills plus churn on a 420MB disk must exhaust it"
        );
    }

    #[test]
    fn reserve_prevents_ood_at_cost_of_time() {
        let m = run_cluster(260, 480, 150.0);
        assert!(m.crashed.is_none(), "a large reserve must protect the disk");
    }
}
