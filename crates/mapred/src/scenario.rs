//! The MR2820 scenario wiring.

use smartconf_core::{
    Controller, ControllerBuilder, FnTransducer, Goal, Hardness, ModelMode, ProfileSet,
    SmartConfIndirect,
};
use smartconf_harness::{Baseline, RunResult, Scenario, TradeoffDirection};
use smartconf_runtime::{
    shard_seed, Campaign, ChaosSpec, Decider, FaultClass, FaultPlan, GuardPolicy, ProfileSchedule,
    Profiler, ADAPTIVE_CONFIDENCE_FLOOR, CHAOS_STREAM,
};
use smartconf_simkernel::{BackgroundChurn, SimDuration, SimRng, SimTime, Simulation};
use smartconf_workload::WordCountJob;

use crate::cluster::{materialize_job, ClusterEvent, ClusterModel};

const MB: u64 = 1_000_000;

/// The MR2820 scenario: `local.dir.minspacestart`.
///
/// * Profiling: WordCount `(2G, 64MB, 1)` on the same cluster (Table 6).
/// * Evaluation: WordCount `(640MB, 64MB, 2)` then `(640MB, 128MB, 2)` —
///   phase 2's bigger splits spill twice as much per task.
/// * Constraint (hard): no out-of-disk; the controller keeps the worst
///   per-worker disk usage below the capacity goal.
/// * Trade-off: total completion time of both jobs (lower is better).
#[derive(Debug, Clone)]
pub struct Mr2820 {
    workers: usize,
    slots_per_worker: u32,
    disk_capacity: u64,
    /// The user's usage goal; OOD (the crash) sits at full capacity,
    /// with operational slack between them as on any real disk.
    disk_goal: u64,
    disk_base: u64,
    churn_mean: f64,
    process_rate: f64,
    shuffle_delay: SimDuration,
    horizon: SimTime,
    profile_settings: Vec<f64>,
}

impl Mr2820 {
    /// Standard setup: two workers × two slots, 860 MB local disks with
    /// ~500 MB already claimed by base usage and co-tenants. Map spills
    /// stay resident until the (slow) shuffle fetches them, so back-to-
    /// back jobs overlap their disk footprints at the job boundary —
    /// exactly where a too-small reserve runs out of disk.
    pub fn standard() -> Self {
        Mr2820 {
            workers: 2,
            slots_per_worker: 2,
            disk_capacity: 900 * MB,
            disk_goal: 860 * MB,
            disk_base: 200 * MB,
            churn_mean: 300.0 * MB as f64,
            process_rate: 20.0 * MB as f64,
            shuffle_delay: SimDuration::from_secs(30),
            horizon: SimTime::from_secs(900),
            profile_settings: vec![150.0, 230.0, 310.0, 390.0],
        }
    }

    /// The disk-usage goal in MB (the user's constraint; the physical
    /// out-of-disk crash sits at full capacity above it).
    pub fn disk_goal_mb(&self) -> f64 {
        self.disk_goal as f64 / MB as f64
    }

    fn eval_jobs(&self, seed: u64) -> Vec<Vec<smartconf_workload::MapTask>> {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x90b5);
        vec![
            materialize_job(&WordCountJob::new(720 * MB, 16 * MB, 2), &mut rng),
            materialize_job(&WordCountJob::new(1_440 * MB, 32 * MB, 2), &mut rng),
        ]
    }

    fn churn(&self) -> BackgroundChurn {
        BackgroundChurn::with_spikes(
            self.churn_mean,
            3.0 * MB as f64,
            0.002,
            10.0 * MB as f64,
            20.0 * MB as f64,
        )
        .with_reversion(0.02)
    }

    fn run_cluster(
        &self,
        decider: Decider,
        initial_minspace: u64,
        jobs: Vec<Vec<smartconf_workload::MapTask>>,
        seed: u64,
        label: &str,
    ) -> RunResult {
        self.run_cluster_chaos(decider, initial_minspace, jobs, seed, label, None)
    }

    /// The guard ladder shared by every chaos and campaign run.
    ///
    /// Fallback in controller space: aim for 60% of the usage goal,
    /// the same conservative point the controller starts from.
    fn guard(&self) -> GuardPolicy {
        GuardPolicy::new().fallback_setting("local.dir.minspacestart_mb", self.disk_goal_mb() * 0.6)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cluster_chaos(
        &self,
        decider: Decider,
        initial_minspace: u64,
        jobs: Vec<Vec<smartconf_workload::MapTask>>,
        seed: u64,
        label: &str,
        chaos: Option<ChaosSpec>,
    ) -> RunResult {
        let mut model = ClusterModel::new(
            self.workers,
            self.slots_per_worker,
            self.disk_capacity,
            self.disk_base,
            self.churn(),
            decider,
            initial_minspace,
            jobs,
            self.process_rate,
            self.shuffle_delay,
            self.disk_goal_mb(),
            self.horizon,
        );
        if let Some(spec) = chaos {
            model.enable_chaos(spec);
        }
        let mut sim = Simulation::new(model, seed);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::Assign);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::SpillTick);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::ChurnTick);
        sim.schedule_at(SimTime::ZERO, ClusterEvent::Sample);
        sim.run_until(self.horizon);
        let m = sim.into_model();

        let makespan = match (m.crashed, m.finished_at) {
            (Some(_), _) | (None, None) => f64::INFINITY, // failed or hung
            (None, Some(t)) => t.as_secs_f64(),
        };
        let mut result = RunResult::new(
            label,
            m.crashed.is_none() && m.finished_at.is_some(),
            makespan,
            "job completion time (s)",
            TradeoffDirection::LowerIsBetter,
        );
        if let Some(t) = m.crashed {
            result = result.with_crash(t.as_micros());
        }
        result
            .with_series(m.used_series)
            .with_series(m.conf_series)
            .with_epochs(m.plane.into_log())
    }

    /// Profiles worst-worker disk usage against the reserve setting using
    /// the profiling job `(2G, 64MB, 1)`, via the shared [`Profiler`].
    pub fn collect_profile(&self, seed: u64) -> ProfileSet {
        Profiler::new(Scenario::profile_schedule(self)).collect(seed, |setting_mb, s| {
            let mut rng = SimRng::seed_from_u64(seed ^ 0x9a0f);
            let job = materialize_job(&WordCountJob::new(2_048 * MB, 16 * MB, 1), &mut rng);
            self.run_cluster(
                Decider::Static(setting_mb),
                (setting_mb * MB as f64) as u64,
                vec![job],
                s,
                "profiling",
            )
            .series("worst_worker_disk_mb")
            .expect("disk series")
            .clone()
        })
    }

    /// Synthesizes the SmartConf controller (direct on the reserve, hard
    /// goal on worst-worker disk usage).
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails (the standard profile is well-formed).
    pub fn build_controller(&self, profile: &ProfileSet) -> Controller {
        self.build_controller_with_mode(profile, ModelMode::Frozen)
    }

    /// [`Mr2820::build_controller`] with an explicit model mode:
    /// [`ModelMode::Adaptive`] seeds an online RLS estimator (from the
    /// overridden unit gain, not the profiled fit) instead of freezing it.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails (the standard profile is well-formed).
    pub fn build_controller_with_mode(&self, profile: &ProfileSet, mode: ModelMode) -> Controller {
        let goal = Goal::new("worker_disk_mb", self.disk_goal_mb())
            .with_hardness(Hardness::Hard)
            .expect("positive target");
        ControllerBuilder::new(goal)
            .profile(profile)
            .expect("profiling data supports synthesis")
            // The controller acts on the deputy (committed usage), whose
            // gain on the metric is identically 1; profiling still
            // supplies the pole and virtual-goal margin.
            .alpha(1.0)
            .bounds(0.0, self.disk_goal_mb())
            .initial(self.disk_goal_mb() * 0.6)
            .model_mode(mode)
            .build()
            .expect("controller synthesis")
    }
}

impl Default for Mr2820 {
    fn default() -> Self {
        Self::standard()
    }
}

impl Scenario for Mr2820 {
    fn id(&self) -> &str {
        "MR2820"
    }

    fn description(&self) -> &str {
        "local.dir.minspacestart decides if a worker has enough disk to run a task. \
         Too small, OOD; too big, low utility (job latency hurts)."
    }

    fn config_name(&self) -> &str {
        "local.dir.minspacestart"
    }

    fn candidate_settings(&self) -> Vec<f64> {
        (0..=14).map(|i| (i * 30) as f64).collect()
    }

    fn static_setting(&self, choice: Baseline) -> Option<f64> {
        match choice {
            // The original default reserved nothing; the patch reserved
            // a token 1 MB (Figure 5's "0M" and "1M" annotations).
            Baseline::BuggyDefault => Some(0.0),
            Baseline::PatchDefault => Some(1.0),
            _ => None,
        }
    }

    fn tradeoff_direction(&self) -> TradeoffDirection {
        TradeoffDirection::LowerIsBetter
    }

    fn run_static(&self, setting: f64, seed: u64) -> RunResult {
        let bytes = (setting.max(0.0) * MB as f64) as u64;
        self.run_cluster(
            Decider::Static(setting.max(0.0)),
            bytes,
            self.eval_jobs(seed),
            seed,
            &format!("static-{setting}MB"),
        )
    }

    fn run_smartconf(&self, seed: u64) -> RunResult {
        self.run_smartconf_profiled(seed, &self.evaluation_profiles(seed))
    }

    fn run_smartconf_profiled(&self, seed: u64, profiles: &[ProfileSet]) -> RunResult {
        let controller = self.build_controller(&profiles[0]);
        let initial = ((self.disk_goal_mb() - controller.current()) * MB as f64) as u64;
        // minspace = capacity − desired usage: the §5.3 transducer for a
        // threshold expressed as *free* rather than *used* space.
        let cap = self.disk_capacity as f64 / MB as f64;
        let conf = SmartConfIndirect::with_transducer(
            "local.dir.minspacestart",
            controller,
            Box::new(FnTransducer::new(move |desired: f64| {
                (cap - desired).max(0.0)
            })),
        );
        self.run_cluster(
            Decider::Deputy(Box::new(conf)),
            initial,
            self.eval_jobs(seed),
            seed,
            "SmartConf",
        )
    }

    fn run_chaos(&self, seed: u64, class: FaultClass) -> RunResult {
        self.run_chaos_profiled(seed, class, &self.evaluation_profiles(seed))
    }

    fn run_chaos_profiled(
        &self,
        seed: u64,
        class: FaultClass,
        profiles: &[ProfileSet],
    ) -> RunResult {
        let controller = self.build_controller(&profiles[0]);
        let initial = ((self.disk_goal_mb() - controller.current()) * MB as f64) as u64;
        let cap = self.disk_capacity as f64 / MB as f64;
        let conf = SmartConfIndirect::with_transducer(
            "local.dir.minspacestart",
            controller,
            Box::new(FnTransducer::new(move |desired: f64| {
                (cap - desired).max(0.0)
            })),
        );
        let spec =
            ChaosSpec::standard(class, shard_seed(seed, CHAOS_STREAM)).with_guard(self.guard());
        self.run_cluster_chaos(
            Decider::Deputy(Box::new(conf)),
            initial,
            self.eval_jobs(seed),
            seed,
            &format!("Chaos-{}", class.label()),
            Some(spec),
        )
    }

    fn run_plan_profiled(&self, seed: u64, plan: &FaultPlan, profiles: &[ProfileSet]) -> RunResult {
        let controller = self.build_controller(&profiles[0]);
        let initial = ((self.disk_goal_mb() - controller.current()) * MB as f64) as u64;
        let cap = self.disk_capacity as f64 / MB as f64;
        let conf = SmartConfIndirect::with_transducer(
            "local.dir.minspacestart",
            controller,
            Box::new(FnTransducer::new(move |desired: f64| {
                (cap - desired).max(0.0)
            })),
        );
        let spec =
            ChaosSpec::new(shard_seed(seed, CHAOS_STREAM), plan.clone()).with_guard(self.guard());
        self.run_cluster_chaos(
            Decider::Deputy(Box::new(conf)),
            initial,
            self.eval_jobs(seed),
            seed,
            "Plan-chaos",
            Some(spec),
        )
    }

    fn run_adaptive_profiled(&self, seed: u64, profiles: &[ProfileSet]) -> RunResult {
        let controller = self.build_controller_with_mode(&profiles[0], ModelMode::Adaptive);
        let initial = ((self.disk_goal_mb() - controller.current()) * MB as f64) as u64;
        let cap = self.disk_capacity as f64 / MB as f64;
        let conf = SmartConfIndirect::with_transducer(
            "local.dir.minspacestart",
            controller,
            Box::new(FnTransducer::new(move |desired: f64| {
                (cap - desired).max(0.0)
            })),
        );
        self.run_cluster(
            Decider::Deputy(Box::new(conf)),
            initial,
            self.eval_jobs(seed),
            seed,
            "Adaptive",
        )
    }

    fn run_adaptive_chaos_profiled(
        &self,
        seed: u64,
        class: FaultClass,
        profiles: &[ProfileSet],
    ) -> RunResult {
        let controller = self.build_controller_with_mode(&profiles[0], ModelMode::Adaptive);
        let initial = ((self.disk_goal_mb() - controller.current()) * MB as f64) as u64;
        let cap = self.disk_capacity as f64 / MB as f64;
        let conf = SmartConfIndirect::with_transducer(
            "local.dir.minspacestart",
            controller,
            Box::new(FnTransducer::new(move |desired: f64| {
                (cap - desired).max(0.0)
            })),
        );
        // Same profiled-safe fallback as the frozen chaos run, plus the
        // model-doubt safety net for estimator collapse.
        let guard = self.guard().confidence_floor(ADAPTIVE_CONFIDENCE_FLOOR);
        let spec = ChaosSpec::standard(class, shard_seed(seed, CHAOS_STREAM)).with_guard(guard);
        self.run_cluster_chaos(
            Decider::Deputy(Box::new(conf)),
            initial,
            self.eval_jobs(seed),
            seed,
            &format!("AdaptiveChaos-{}", class.label()),
            Some(spec),
        )
    }

    fn run_campaign_profiled(
        &self,
        seed: u64,
        campaign: Campaign,
        profiles: &[ProfileSet],
    ) -> RunResult {
        let controller = self.build_controller(&profiles[0]);
        let initial = ((self.disk_goal_mb() - controller.current()) * MB as f64) as u64;
        let cap = self.disk_capacity as f64 / MB as f64;
        let conf = SmartConfIndirect::with_transducer(
            "local.dir.minspacestart",
            controller,
            Box::new(FnTransducer::new(move |desired: f64| {
                (cap - desired).max(0.0)
            })),
        );
        let spec = ChaosSpec::campaign(campaign, shard_seed(seed, CHAOS_STREAM))
            .with_guard(self.guard().campaign_hardened());
        self.run_cluster_chaos(
            Decider::Deputy(Box::new(conf)),
            initial,
            self.eval_jobs(seed),
            seed,
            &format!("Campaign-{}", campaign.label()),
            Some(spec),
        )
    }

    fn run_adaptive_campaign_profiled(
        &self,
        seed: u64,
        campaign: Campaign,
        profiles: &[ProfileSet],
    ) -> RunResult {
        let controller = self.build_controller_with_mode(&profiles[0], ModelMode::Adaptive);
        let initial = ((self.disk_goal_mb() - controller.current()) * MB as f64) as u64;
        let cap = self.disk_capacity as f64 / MB as f64;
        let conf = SmartConfIndirect::with_transducer(
            "local.dir.minspacestart",
            controller,
            Box::new(FnTransducer::new(move |desired: f64| {
                (cap - desired).max(0.0)
            })),
        );
        let guard = self
            .guard()
            .confidence_floor(ADAPTIVE_CONFIDENCE_FLOOR)
            .campaign_hardened();
        let spec = ChaosSpec::campaign(campaign, shard_seed(seed, CHAOS_STREAM)).with_guard(guard);
        self.run_cluster_chaos(
            Decider::Deputy(Box::new(conf)),
            initial,
            self.eval_jobs(seed),
            seed,
            &format!("AdaptiveCampaign-{}", campaign.label()),
            Some(spec),
        )
    }

    fn profile_schedule(&self) -> ProfileSchedule {
        // 48 disk samples on a 1 s grid after the job's 5 s ramp-up, at
        // each profiled reserve setting.
        ProfileSchedule::grid(self.profile_settings.clone(), 48, 5_000_000, 1_000_000)
    }

    fn profile(&self, seed: u64) -> ProfileSet {
        self.collect_profile(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_slopes_down() {
        let p = Mr2820::standard().collect_profile(3);
        assert_eq!(p.num_settings(), 4);
        let fit = p.fit().unwrap();
        // Bigger reserve => lower worst-case usage.
        assert!(
            fit.alpha() < 0.0,
            "alpha {} should be negative",
            fit.alpha()
        );
    }

    #[test]
    fn smartconf_finishes_without_ood() {
        let s = Mr2820::standard();
        let r = s.run_smartconf(23);
        assert!(
            r.constraint_ok,
            "SmartConf OOD or hung: {:?}",
            r.crash_time_us
        );
        assert!(r.tradeoff.is_finite());
    }

    #[test]
    fn no_reserve_goes_ood() {
        let s = Mr2820::standard();
        let buggy = s.run_static(0.0, 23);
        let patch = s.run_static(1.0, 23);
        assert!(!buggy.constraint_ok, "0-byte reserve must fail");
        assert!(!patch.constraint_ok, "1MB reserve must fail");
    }

    #[test]
    fn big_reserve_is_safe_but_slow() {
        let s = Mr2820::standard();
        let big = s.run_static(250.0, 23);
        if big.constraint_ok {
            let smart = s.run_smartconf(23);
            assert!(
                smart.tradeoff <= big.tradeoff * 1.05,
                "SmartConf {}s should not be much slower than static-250 {}s",
                smart.tradeoff,
                big.tradeoff
            );
        }
    }

    #[test]
    fn chaos_run_survives_restarts_and_replays() {
        let s = Mr2820::standard();
        let a = s.run_chaos(23, FaultClass::PlantRestart);
        assert!(a.constraint_ok, "OOD or hang under injected restarts");
        let b = s.run_chaos(23, FaultClass::PlantRestart);
        assert_eq!(a.tradeoff, b.tradeoff, "chaos run must replay exactly");
    }

    #[test]
    fn deterministic() {
        let s = Mr2820::standard();
        let a = s.run_static(150.0, 4);
        let b = s.run_static(150.0, 4);
        assert_eq!(a.tradeoff, b.tradeoff);
    }

    #[test]
    fn scenario_metadata() {
        let s = Mr2820::standard();
        assert_eq!(s.id(), "MR2820");
        assert_eq!(s.static_setting(Baseline::BuggyDefault), Some(0.0));
        assert_eq!(s.static_setting(Baseline::PatchDefault), Some(1.0));
        assert_eq!(s.tradeoff_direction(), TradeoffDirection::LowerIsBetter);
    }
}
