//! A worker's local disk.

/// Tracks one worker's local-disk usage: a static base, the fluctuating
/// usage of co-located tenants (logs, other jobs' shuffle), and the map
/// task spills this cluster writes.
///
/// Exceeding [`WorkerDisk::capacity_bytes`] is an out-of-disk failure —
/// MR2820's hard constraint.
///
/// # Example
///
/// ```
/// use smartconf_mapred::WorkerDisk;
///
/// let mut d = WorkerDisk::new(500_000_000, 100_000_000);
/// d.set_other(150_000_000);
/// d.add_spill(100_000_000);
/// assert_eq!(d.used_bytes(), 350_000_000);
/// assert_eq!(d.free_bytes(), 150_000_000);
/// assert!(!d.is_full());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerDisk {
    capacity: u64,
    base: u64,
    other: u64,
    spills: u64,
}

impl WorkerDisk {
    /// Creates a disk with `capacity` total bytes, of which `base` are
    /// permanently used (system files, installed artifacts).
    ///
    /// # Panics
    ///
    /// Panics if `base > capacity` or `capacity` is zero.
    pub fn new(capacity: u64, base: u64) -> Self {
        assert!(capacity > 0, "disk capacity must be positive");
        assert!(base <= capacity, "base usage cannot exceed capacity");
        WorkerDisk {
            capacity,
            base,
            other: 0,
            spills: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Sets the co-tenant usage (driven by a churn process).
    pub fn set_other(&mut self, bytes: u64) {
        self.other = bytes;
    }

    /// Adds spill bytes written by a running task.
    pub fn add_spill(&mut self, bytes: u64) {
        self.spills += bytes;
    }

    /// Releases spill bytes once the shuffle has fetched them.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is resident (an accounting bug).
    pub fn release_spill(&mut self, bytes: u64) {
        assert!(
            bytes <= self.spills,
            "releasing {bytes} spill bytes but only {} resident",
            self.spills
        );
        self.spills -= bytes;
    }

    /// Current spill residency.
    pub fn spill_bytes(&self) -> u64 {
        self.spills
    }

    /// Total used bytes.
    pub fn used_bytes(&self) -> u64 {
        self.base
            .saturating_add(self.other)
            .saturating_add(self.spills)
    }

    /// Free bytes (zero when over capacity).
    pub fn free_bytes(&self) -> u64 {
        self.capacity.saturating_sub(self.used_bytes())
    }

    /// Whether usage exceeds capacity — out-of-disk.
    pub fn is_full(&self) -> bool {
        self.used_bytes() > self.capacity
    }

    /// Used bytes in decimal MB.
    pub fn used_mb(&self) -> f64 {
        self.used_bytes() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut d = WorkerDisk::new(1_000, 100);
        d.set_other(200);
        d.add_spill(300);
        assert_eq!(d.used_bytes(), 600);
        assert_eq!(d.free_bytes(), 400);
        d.release_spill(100);
        assert_eq!(d.spill_bytes(), 200);
        assert_eq!(d.used_bytes(), 500);
    }

    #[test]
    fn full_detection() {
        let mut d = WorkerDisk::new(1_000, 100);
        d.set_other(900);
        assert!(!d.is_full()); // exactly full is not over
        d.add_spill(1);
        assert!(d.is_full());
        assert_eq!(d.free_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut d = WorkerDisk::new(1_000, 0);
        d.add_spill(10);
        d.release_spill(11);
    }

    #[test]
    #[should_panic(expected = "base usage")]
    fn base_over_capacity_panics() {
        let _ = WorkerDisk::new(100, 200);
    }
}
