//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest's API that the workspace actually
//! uses: the [`proptest!`] test macro, `prop_assert!`/`prop_assert_eq!`,
//! range strategies over the primitive numeric types, tuple strategies,
//! `prop::collection::vec`, `proptest::bool::ANY`, and string strategies
//! for the two regex shapes the tests rely on (`"[a-z]{1,8}"`-style
//! character classes and `"\\PC{0,300}"`).
//!
//! Differences from real proptest, by design:
//!
//! - no shrinking: a failing case panics with the case number and the
//!   per-test deterministic seed, which is enough to reproduce it;
//! - sampling is uniform over the strategy's range rather than
//!   bias-towards-edge-cases;
//! - the number of cases per property defaults to 64 and can be raised
//!   with the `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic splitmix64 generator seeded from the test name, so each
/// property sees a stable stream across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)` for `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// The raw seed state (reported on failure for reproduction).
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// A source of random values of one type (proptest's core trait, minus
/// shrinking).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a regex-shaped pattern.
///
/// Supports the shapes the workspace tests use: `CLASS{m,n}` where
/// `CLASS` is either `\PC` (any printable char) or a `[...]` class of
/// literal chars and `a-z` ranges. Anything else degrades to alphanumeric
/// strings of length 0..=32 — still "arbitrary input" for parser
/// totality tests.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_pattern(self).unwrap_or((CharClass::Alnum, 0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| class.sample(rng)).collect()
    }
}

enum CharClass {
    /// `\PC`: any non-control character (sampled from printable ASCII
    /// plus a few multibyte characters to exercise UTF-8 paths).
    Printable,
    /// `[...]` ranges and literals.
    Set(Vec<char>),
    Alnum,
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Printable => {
                const EXTRA: [char; 6] = ['é', 'Ω', '中', '\u{00a0}', '☃', '¿'];
                let d = rng.below(100);
                if d < 94 {
                    (0x20 + rng.below(0x5f) as u8) as char
                } else {
                    EXTRA[rng.below(EXTRA.len() as u64) as usize]
                }
            }
            CharClass::Set(chars) => chars[rng.below(chars.len() as u64) as usize],
            CharClass::Alnum => {
                const ALNUM: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
                ALNUM[rng.below(ALNUM.len() as u64) as usize] as char
            }
        }
    }
}

fn parse_pattern(pat: &str) -> Option<(CharClass, usize, usize)> {
    let (class, rest) = if let Some(rest) = pat.strip_prefix("\\PC") {
        (CharClass::Printable, rest)
    } else if let Some(stripped) = pat.strip_prefix('[') {
        let close = stripped.find(']')?;
        let mut chars = Vec::new();
        let body: Vec<char> = stripped[..close].chars().collect();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                for c in body[i]..=body[i + 2] {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(body[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        (CharClass::Set(chars), &stripped[close + 1..])
    } else {
        return None;
    };
    let rest = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((class, lo, hi))
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `prop::` path alias used inside `proptest!` bodies.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Prints the failing case on panic so a property failure is
/// reproducible (`PROPTEST_CASES` + the reported seed).
pub struct CaseReporter<'a> {
    test: &'a str,
    case: u32,
    seed: u64,
}

impl<'a> CaseReporter<'a> {
    /// Arms the reporter for one case.
    pub fn new(test: &'a str, case: u32, seed: u64) -> Self {
        CaseReporter { test, case, seed }
    }
    /// Disarms after the case passes.
    pub fn passed(self) {
        std::mem::forget(self);
    }
}

impl Drop for CaseReporter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} (rng state {:#x})",
                self.test, self.case, self.seed
            );
        }
    }
}

/// Defines `#[test]` functions that run their body over many sampled
/// inputs. Mirrors proptest's macro for the `arg in strategy` form.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases();
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..cases {
                let reporter =
                    $crate::CaseReporter::new(stringify!($name), case, rng.state());
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
                reporter.passed();
            }
        }
    )*};
}

/// Assertion inside a property body (panics, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-3i32..=3).sample(&mut rng);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::deterministic("vec");
        let v = prop::collection::vec((0u8..3, 0.0f64..1.0), 2..5).sample(&mut rng);
        assert!((2..5).contains(&v.len()));
        for (a, b) in v {
            assert!(a < 3);
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::deterministic("str");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "\\PC{0,300}".sample(&mut rng);
            assert!(t.chars().count() <= 300);
            assert!(t.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_round_trip(x in 0u64..100, mut v in prop::collection::vec(0u8..2, 1..4)) {
            v.push(0);
            prop_assert!(x < 100);
            prop_assert_eq!(*v.last().unwrap(), 0u8);
        }
    }
}
