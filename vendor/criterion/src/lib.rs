//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access; this vendored crate
//! keeps the workspace's `[[bench]]` targets compiling and running with
//! criterion's macro surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`/`iter_batched`). It
//! measures wall-clock time with `std::time::Instant` and prints a
//! per-benchmark mean; it does not do statistical analysis, warm-up
//! tuning, or HTML reports.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_one("", &name.into(), sample_size, &mut f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one benchmark in the group.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &name.into(), self.sample_size, &mut f);
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

fn run_one(group: &str, name: &str, sample_size: usize, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        per_sample_iters: 1,
    };
    // Calibration sample: find an iteration count that takes ~1 ms so
    // Instant overhead does not dominate nanosecond-scale bodies.
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.total.as_nanos() / b.iters as u128;
        b.per_sample_iters = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
    }
    b.total = Duration::ZERO;
    b.iters = 0;
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mean_ns = if b.iters == 0 {
        0
    } else {
        b.total.as_nanos() / b.iters as u128
    };
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {label:<40} {mean_ns:>12} ns/iter ({} iters)",
        b.iters
    );
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    total: Duration,
    iters: u64,
    per_sample_iters: u64,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let n = self.per_sample_iters;
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += n;
    }

    /// Times `routine` with a fresh `setup()` input per iteration; only
    /// the routine is timed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let n = self.per_sample_iters;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iters += n;
    }
}

/// Re-export so `use criterion::black_box` also works.
pub use std::hint::black_box;

/// Groups benchmark functions, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| ran += x / 21, BatchSize::SmallInput)
        });
        assert!(ran > 0);
    }

    criterion_group! {
        name = named_form;
        config = Criterion::default().sample_size(1);
        targets = noop
    }
    criterion_group!(list_form, noop);

    fn noop(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macros_compile_and_run() {
        named_form();
        list_form();
    }
}
