//! The HB3813 case study end-to-end: SmartConf vs. the defaults that
//! made users file the bug.
//!
//! Run with: `cargo run --release --example kvstore_oom`

use smartconf::harness::Scenario;
use smartconf::kvstore::scenarios::Hb3813;

fn main() {
    let scenario = Hb3813::standard();
    println!("{}: {}\n", scenario.id(), scenario.description());

    let smart = scenario.run_smartconf(42);
    let buggy = scenario.run_static(1000.0, 42);
    let patch = scenario.run_static(100.0, 42);
    let conservative = scenario.run_static(40.0, 42);

    for r in [&smart, &conservative, &patch, &buggy] {
        let status = if r.crashed {
            format!(
                "OOM at {:.0} s",
                r.crash_time_us.unwrap_or_default() as f64 / 1e6
            )
        } else if r.constraint_ok {
            "constraint met".to_string()
        } else {
            "constraint violated".to_string()
        };
        println!(
            "{:<24} throughput {:>6.1} ops/s   {status}",
            r.label, r.tradeoff
        );
    }

    let mem = smart.series("used_memory_mb").expect("series recorded");
    let summary = mem.summary().expect("non-empty");
    println!(
        "\nSmartConf memory: mean {:.0} MB, peak {:.0} MB against a {:.0} MB limit",
        summary.mean,
        summary.max,
        scenario.heap_goal_mb()
    );
    println!(
        "speedup over the conservative static-40: {:.2}x",
        smart.speedup_over(&conservative)
    );
}
