//! The full §4 developer workflow, file to controller:
//!
//! 1. the developer ships `SmartConf.sys` (configuration → metric
//!    mapping, bounds, initial values) and enables profiling capture;
//! 2. the user writes goals into the application config;
//! 3. a first run under a safe static setting captures profiling samples
//!    through the normal `set_perf` path into
//!    `<ConfName>.SmartConf.sys`;
//! 4. the next start loads everything through [`ConfManager`] and the
//!    configuration adjusts itself — including a run-time `setGoal`.
//!
//! Run with: `cargo run --example registry_workflow`

use std::error::Error;
use std::fs;

use smartconf::core::{ConfManager, ProfilingCapture, Registry, SmartConfIndirect};
use smartconf::simkernel::SimRng;

/// The "system": memory responds to the queue length.
fn memory_mb(queue_len: f64, rng: &mut SimRng) -> f64 {
    100.0 + 2.0 * queue_len + rng.normal(0.0, 3.0)
}

fn main() -> Result<(), Box<dyn Error>> {
    let dir = std::env::temp_dir().join(format!("smartconf-workflow-{}", std::process::id()));
    fs::create_dir_all(&dir)?;
    let mut rng = SimRng::seed_from_u64(11);

    // (1) Developer-shipped system file...
    fs::write(
        dir.join("SmartConf.sys"),
        "/* SmartConf.sys */\n\
         profiling = on\n\
         max.queue.size @ memory_consumption_max\n\
         max.queue.size = 50\n\
         max.queue.size.indirect = 1\n\
         max.queue.size.max = 2000\n",
    )?;
    // (2) ...and the user's goal.
    fs::write(
        dir.join("app.conf"),
        "memory_consumption_max = 495\nmemory_consumption_max.hard = 1\n",
    )?;

    // (3) First run: a safe static bound while profiling captures
    // samples through the ordinary set_perf path. We sweep a few bounds
    // as the paper's profiling phase does.
    {
        let mut registry = Registry::new();
        registry.load_sys_file(dir.join("SmartConf.sys"))?;
        println!(
            "profiling capture enabled: {}",
            registry.profiling_enabled()
        );
        let mut capture = ProfilingCapture::new(&dir, "max.queue.size", 16);
        for bound in [40.0, 80.0, 120.0, 160.0] {
            for _ in 0..10 {
                capture.record(bound, memory_mb(bound, &mut rng));
            }
        }
        capture.flush()?;
        println!(
            "captured {} profiling samples to {}",
            capture.recorded(),
            ProfilingCapture::file_path(&dir, "max.queue.size").display()
        );
    }

    // (4) Next start: everything loads from disk; the configuration now
    // adjusts itself.
    let mut registry = Registry::new();
    registry.load_sys_file(dir.join("SmartConf.sys"))?;
    registry.load_app_file(dir.join("app.conf"))?;
    registry.load_profile_file(
        "max.queue.size",
        ProfilingCapture::file_path(&dir, "max.queue.size"),
    )?;
    let mut manager = ConfManager::from_registry(&registry)?;
    println!(
        "manager built {} configuration(s): {:?}",
        manager.len(),
        manager.names().collect::<Vec<_>>()
    );

    let mut queue_len = 0.0_f64;
    for step in 0..60 {
        let measured = memory_mb(queue_len, &mut rng);
        manager.set_perf_indirect("max.queue.size", measured, queue_len)?;
        let bound = manager.conf("max.queue.size")?;
        queue_len = queue_len.max(0.0).min(bound); // the queue fills to its bound
        if step % 15 == 0 {
            println!("step {step:>2}: memory {measured:>6.1} MB -> max.queue.size {bound:>6.1}");
        }
        queue_len = bound.min(queue_len + 40.0);
    }

    // An administrator tightens the goal at run time.
    let updated = manager.set_goal("memory_consumption_max", 400.0)?;
    println!("\nsetGoal(400): retargeted {updated} controller(s)");
    for _ in 0..40 {
        let measured = memory_mb(queue_len, &mut rng);
        manager.set_perf_indirect("max.queue.size", measured, queue_len)?;
        queue_len = manager.conf("max.queue.size")?.min(queue_len + 40.0);
    }
    let final_mem = memory_mb(queue_len, &mut rng);
    println!("after retarget: memory settles at {final_mem:.1} MB (goal 400)");
    assert!(final_mem < 410.0);

    // Custom-transducer configurations plug into the same manager.
    let custom = registry.build_indirect_with(
        "max.queue.size",
        Box::new(smartconf::core::FnTransducer::new(|x: f64| x.round())),
    )?;
    let _: &SmartConfIndirect = &custom;
    println!("custom-transducer build also works: {}", custom.name());

    fs::remove_dir_all(&dir)?;
    Ok(())
}
