//! Two PerfConfs, one memory budget (the paper's §6.5 / Figure 8).
//!
//! The request-queue bound and the response-queue bound both constrain
//! the same heap. Declared against the same *super-hard* goal, their
//! controllers split the control error (interaction factor N = 2) and
//! trade the budget as the read/write mix shifts.
//!
//! Run with: `cargo run --release --example interacting_queues`

use smartconf::kvstore::scenarios::TwinQueues;

fn main() {
    let twin = TwinQueues::standard();
    let out = twin.run_smartconf(13);
    let r = &out.result;

    println!("interaction factor N = {}", out.interaction_n);
    println!(
        "memory constraint: {}",
        if r.constraint_ok {
            "never violated"
        } else {
            "VIOLATED"
        }
    );

    println!("\n   t(s)   used(MB)   req.bound   resp.bound(MB)");
    for ts in [10u64, 40, 49, 55, 70, 100, 150, 200, 239] {
        let t = ts * 1_000_000;
        let v = |name: &str| {
            r.series(name)
                .and_then(|s| s.value_at(t))
                .map(|v| format!("{v:>8.0}"))
                .unwrap_or_else(|| format!("{:>8}", "-"))
        };
        println!(
            "  {ts:>4}   {}   {}   {}",
            v("used_memory_mb"),
            v("max.queue.size"),
            v("response.queue.maxsize_mb")
        );
    }
    println!("\nreads join at 50 s: the response queue claims budget and the");
    println!("request-queue bound gives it back - no OOM at any point.");
}
