//! Quickstart: put one configuration under SmartConf control.
//!
//! Walks the full paper workflow on a toy system whose memory is
//! `100 + 2 × cache_size` MB plus noise:
//!
//! 1. profile the metric at a few settings (paper §6.1: 4 × 10 samples),
//! 2. state the user's goal (memory ≤ 495 MB, hard),
//! 3. synthesize the controller (gain, pole, virtual goal — all derived),
//! 4. run the set_perf/conf loop at the configuration's use site.
//!
//! Run with: `cargo run --example quickstart`

use smartconf::core::{ControllerBuilder, Error, Goal, Hardness, ProfileSet, SmartConf};
use smartconf::simkernel::SimRng;

/// The "system": memory responds to the cache-size setting with noise
/// and, late in the run, a disturbance (another component allocates).
fn measure_memory(setting: f64, disturbance: f64, rng: &mut SimRng) -> f64 {
    100.0 + 2.0 * setting + disturbance + rng.normal(0.0, 3.0)
}

fn main() -> Result<(), Error> {
    let mut rng = SimRng::seed_from_u64(7);

    // 1. Profile: 4 settings x 10 measurements.
    let mut profile = ProfileSet::new();
    for setting in [40.0, 80.0, 120.0, 160.0] {
        for _ in 0..10 {
            profile.add(setting, measure_memory(setting, 0.0, &mut rng));
        }
    }
    let fit = profile.fit()?;
    println!(
        "profiled: alpha = {:.2} MB per cache slot, lambda = {:.3}",
        fit.alpha(),
        profile.lambda()
    );

    // 2. The user's goal, stated in the application config.
    let goal = Goal::new("memory_mb", 495.0).with_hardness(Hardness::Hard)?;

    // 3. Synthesis: no control parameter is supplied anywhere.
    let controller = ControllerBuilder::new(goal)
        .profile(&profile)?
        .bounds(0.0, 1_000.0)
        .initial(0.0)
        .build()?;
    println!(
        "synthesized: pole = {:.3}, virtual goal = {:.1} MB (constraint 495 MB)",
        controller.pole(),
        controller.effective_target()
    );
    let mut cache_size = SmartConf::new("cache.size", controller);

    // 4. The use-site loop. From step 60 a disturbance ramps in:
    //    another component grows to 120 MB over 15 steps (allocations
    //    build up over GC cycles; they do not appear in one instant).
    let mut setting = 0.0;
    for step in 0..120i32 {
        let disturbance = ((step - 59).clamp(0, 15) as f64) * 8.0;
        let memory = measure_memory(setting, disturbance, &mut rng);
        assert!(
            memory <= 505.0,
            "constraint blown at step {step}: {memory:.1} MB"
        );

        cache_size.set_perf(memory);
        setting = cache_size.conf();

        if step % 20 == 0 || step == 61 {
            println!("step {step:>3}: memory {memory:>6.1} MB -> cache.size {setting:>6.1}");
        }
    }
    println!("\nthe cache grew to use the headroom, then shrank when the");
    println!("disturbance arrived - no OOM, no manual tuning.");
    Ok(())
}
