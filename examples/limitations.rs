//! SmartConf's own limitations, demonstrated (paper §6.6).
//!
//! 1. Non-monotonic responses are rejected at synthesis: MR5420's
//!    `max_chunks_tolerable` is slow when too small (load imbalance) and
//!    slow when too big (no batching) — SmartConf detects the V-shaped
//!    profile and refuses to build a controller.
//! 2. Unconstrained-optimality goals don't fit: when the user wants "the
//!    fastest copy", there is no constraint for the controller to track;
//!    encoding it as a too-ambitious constraint just raises the
//!    unreachable-goal alert.
//!
//! Run with: `cargo run --example limitations`

use smartconf::core::{ControllerBuilder, Error, Goal, ProfileSet, SmartConf};
use smartconf::simkernel::SimRng;

/// MR5420's distcp copy time vs. chunk count: V-shaped, minimized in the
/// middle.
fn copy_time_secs(chunks: f64, rng: &mut SimRng) -> f64 {
    let imbalance = 4_000.0 / chunks; // few chunks: stragglers dominate
    let overhead = 0.05 * chunks; // many chunks: per-chunk setup dominates
    60.0 + imbalance + overhead + rng.normal(0.0, 1.0)
}

fn main() {
    let mut rng = SimRng::seed_from_u64(3);

    // --- Limitation 1: non-monotonic configurations -------------------
    let mut profile = ProfileSet::new();
    for chunks in [20.0, 100.0, 400.0, 2_000.0] {
        for _ in 0..10 {
            profile.add(chunks, copy_time_secs(chunks, &mut rng));
        }
    }
    println!("profiling max_chunks_tolerable (MR5420):");
    for (setting, stats) in profile.groups() {
        println!(
            "  {setting:>6.0} chunks -> copy time {:>6.1} s",
            stats.mean()
        );
    }
    match ControllerBuilder::new(Goal::new("copy_time_secs", 100.0)).profile(&profile) {
        Err(Error::NonMonotonicModel { conf }) => {
            println!("=> synthesis rejected: non-monotonic response of '{conf}'");
            println!("   (paper 6.6: ML-style tuners fit this problem better)\n");
        }
        other => panic!("expected NonMonotonicModel, got {other:?}"),
    }

    // --- Limitation 2: optimality goals --------------------------------
    // A monotone plant, but the user "goal" is really optimality: they
    // ask for a copy time no plant setting can reach. SmartConf makes
    // its best effort and raises the alert instead of oscillating.
    let mut mono = ProfileSet::new();
    for setting in [20.0, 100.0, 400.0, 2_000.0] {
        for _ in 0..10 {
            // monotone decreasing: more parallelism, faster copy
            mono.add(setting, 200.0 - 0.05 * setting + rng.normal(0.0, 1.0));
        }
    }
    let controller = ControllerBuilder::new(Goal::new("copy_time_secs", 10.0))
        .profile(&mono)
        .expect("monotone profile synthesizes")
        .bounds(20.0, 2_000.0)
        .initial(20.0)
        .build()
        .expect("controller builds");
    let mut conf = SmartConf::new("parallel_copies", controller);
    let mut setting = 20.0;
    for _ in 0..30 {
        let measured = 200.0 - 0.05 * setting + rng.normal(0.0, 1.0);
        conf.set_perf(measured);
        setting = conf.conf();
    }
    println!("asking for a 10 s copy (best achievable is 100 s):");
    println!(
        "  controller parked at the bound ({setting:.0}) and goal_unreachable() = {}",
        conf.goal_unreachable()
    );
    assert!(conf.goal_unreachable());
    println!("=> the 4.3 alert fires; the user is told the goal cannot be met");
}
