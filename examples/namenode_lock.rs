//! The HD4995 case study: `content-summary.limit` with a run-time goal
//! change (the writer-block cap tightens from 20 s to 10 s mid-run).
//!
//! Run with: `cargo run --release --example namenode_lock`

use smartconf::dfs::Hd4995;
use smartconf::harness::Scenario;

fn main() {
    let scenario = Hd4995::standard();
    println!("{}: {}\n", scenario.id(), scenario.description());
    let (g1, g2) = scenario.phase_goals_secs();
    println!("writer-block goal: {g1} s in phase 1, tightened to {g2} s in phase 2\n");

    let smart = scenario.run_smartconf(42);
    let whole_namespace = scenario.run_static(5_000_000.0, 42);
    let tiny = scenario.run_static(100_000.0, 42);

    for r in [&smart, &tiny, &whole_namespace] {
        println!(
            "{:<24} du latency {:>6.1} s   constraint {}",
            r.label,
            r.tradeoff,
            if r.constraint_ok { "met" } else { "VIOLATED" }
        );
    }

    let conf = smart.series("content-summary.limit").expect("series");
    println!(
        "\nSmartConf's traversal limit: {:.0} inodes/quantum in phase 1, {:.0} in phase 2",
        conf.value_at(190_000_000).unwrap_or(f64::NAN),
        conf.value_at(390_000_000).unwrap_or(f64::NAN),
    );
    println!("the limit follows the goal change automatically (setGoal, paper 4.3).");
}
