//! The MR2820 case study: `local.dir.minspacestart` under SmartConf.
//!
//! Run with: `cargo run --release --example mapreduce_disk`

use smartconf::harness::Scenario;
use smartconf::mapred::Mr2820;

fn main() {
    let scenario = Mr2820::standard();
    println!("{}: {}\n", scenario.id(), scenario.description());

    let smart = scenario.run_smartconf(42);
    let buggy = scenario.run_static(0.0, 42);
    let conservative = scenario.run_static(230.0, 42);

    for r in [&smart, &conservative, &buggy] {
        let outcome = if r.crashed {
            format!(
                "out of disk at {:.0} s",
                r.crash_time_us.unwrap_or_default() as f64 / 1e6
            )
        } else if r.tradeoff.is_finite() {
            format!("both jobs done in {:.1} s", r.tradeoff)
        } else {
            "starved (never finished)".to_string()
        };
        println!("{:<24} {outcome}", r.label);
    }

    println!(
        "\nSmartConf vs the paper-era conservative 230 MB reserve: {:.2}x faster",
        smart.speedup_over(&conservative)
    );
}
